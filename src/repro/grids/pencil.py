"""Pencil (2D) decomposition of the FFT grid over a Pr x Pc processor grid.

The paper's slab scheme distributes z-sticks over all R scatter ranks and
z-*planes* back over the same R ranks — its scaling ceiling is the plane
count ``nr3``.  The pencil decomposition arranges the R scatter ranks of
one task group as a ``Pr x Pc`` grid instead and never forms slabs:

* **G space / z pencils** — scatter rank ``r = (i, j)`` owns whole sticks
  (z columns), constrained to the x-range ``X_i`` of its *row* (sticks
  are balanced by G weight over the row's ``Pc`` ranks, exactly like the
  slab LPT but within the row).
* **y pencils** — after the z FFT, the row-internal ``transpose_zy``
  (``Pc`` ranks) gives ``(i, j)`` full y-lines for ``ix in X_i``,
  ``iz in Z_j``.
* **x pencils** — after the y FFT, the column-internal ``transpose_yx``
  (``Pr`` ranks) gives ``(i, j)`` full x-lines for ``iy in Y_i``,
  ``iz in Z_j``.

Each transpose involves only ``Pc`` (resp. ``Pr``) ranks instead of all
R, and the per-rank surface shrinks with both factors — the pivotal
scaling choice past one node (AccFFT; Dalcin et al., PAPERS.md).  The
z+y+x 1D FFT chain is a complete 3D transform, so pencil results agree
with the slab path to floating-point roundoff.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PencilGrid", "factor_grid", "partition_spans"]


def factor_grid(R: int) -> tuple[int, int]:
    """Factor R ranks into ``(Pr, Pc)`` with ``Pr <= Pc``, Pr maximal.

    The squarest factorization minimizes the larger transpose group (both
    transposes shrink as the grid approaches square).
    """
    if R < 1:
        raise ValueError(f"need at least one rank, got {R}")
    pr = 1
    for d in range(1, int(np.sqrt(R)) + 1):
        if R % d == 0:
            pr = d
    return pr, R // pr


def partition_spans(weights: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into ``parts`` contiguous spans of
    near-equal total weight (quota boundaries on the cumulative sum).

    Zero-weight prefixes/suffixes can yield empty spans; the union always
    covers the full index range and spans never overlap.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    n = len(weights)
    cum = np.cumsum(np.asarray(weights, dtype=np.float64))
    total = float(cum[-1]) if n else 0.0
    if total <= 0:
        # Degenerate: fall back to near-equal index ranges.
        base, extra = divmod(n, parts)
        spans = []
        lo = 0
        for k in range(parts):
            hi = lo + base + (1 if k < extra else 0)
            spans.append((lo, hi))
            lo = hi
        return spans
    targets = total * (np.arange(1, parts) / parts)
    bounds = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.clip(bounds, 0, n)
    edges = [0, *(int(b) for b in bounds), n]
    # Quota boundaries are monotone by construction of the cumsum search,
    # but enforce it defensively (repeated cum values can tie).
    for k in range(1, len(edges)):
        if edges[k] < edges[k - 1]:
            edges[k] = edges[k - 1]
    _refine_edges(cum, edges)
    return [(edges[k], edges[k + 1]) for k in range(parts)]


def _refine_edges(cum: np.ndarray, edges: list[int]) -> None:
    """Greedy local improvement of quota boundaries, in place.

    The quota split places each boundary at the first index past its
    target, which can leave one heavy item on the wrong side.  Each pass
    considers moving every interior edge by one index toward the lighter
    neighbour and accepts the move only when the heavier of the two
    adjacent parts strictly shrinks.  That acceptance rule means the pair
    maximum decreases *and* the pair minimum increases on every accepted
    move, so the global max part weight never grows, the global min never
    shrinks, and the quota split's balance bounds survive refinement.
    Each accepted move strictly decreases the sum of squared part weights,
    so the loop terminates; the pass cap is a defensive bound.
    """

    def weight(k: int) -> float:
        lo, hi = edges[k], edges[k + 1]
        return float(cum[hi - 1] - (cum[lo - 1] if lo > 0 else 0.0)) if hi > lo else 0.0

    parts = len(edges) - 1
    for _pass in range(max(len(cum), 1)):
        improved = False
        for k in range(1, parts):
            left, right = weight(k - 1), weight(k)
            pair_max = max(left, right)
            e = edges[k]
            # Shift one item left->right (edge moves left) ...
            if left > right and e - 1 > edges[k - 1]:
                w = float(cum[e - 1] - (cum[e - 2] if e >= 2 else 0.0))
                if max(left - w, right + w) < pair_max:
                    edges[k] = e - 1
                    improved = True
                    continue
            # ... or right->left (edge moves right).
            if right > left and e + 1 < edges[k + 1]:
                w = float(cum[e] - (cum[e - 1] if e >= 1 else 0.0))
                if max(left + w, right - w) < pair_max:
                    edges[k] = e + 1
                    improved = True
        if not improved:
            break


class PencilGrid:
    """Geometry bookkeeping of one task group's ``Pr x Pc`` scatter grid.

    Parameters
    ----------
    grid_shape:
        The global FFT grid ``(nr1, nr2, nr3)``.
    R:
        Scatter ranks per task group (``Pr * Pc == R``).
    x_weights:
        Per-``ix`` G weight (stick counts summed by x column) used to
        balance the row x-ranges; ``None`` balances by column count.
    """

    def __init__(
        self,
        grid_shape: tuple[int, int, int],
        R: int,
        x_weights: np.ndarray | None = None,
    ):
        self.nr1, self.nr2, self.nr3 = (int(n) for n in grid_shape)
        self.R = int(R)
        self.Pr, self.Pc = factor_grid(self.R)
        if x_weights is None:
            x_weights = np.ones(self.nr1)
        if len(x_weights) != self.nr1:
            raise ValueError(
                f"x_weights has {len(x_weights)} entries; grid has nr1={self.nr1}"
            )
        #: Row x-ranges, weight-balanced (the stick-bearing dimension).
        self.x_spans = partition_spans(np.asarray(x_weights), self.Pr)
        #: Row y-ranges and column z-ranges, near-equal index splits.
        self.y_spans = partition_spans(np.ones(self.nr2), self.Pr)
        self.z_spans = partition_spans(np.ones(self.nr3), self.Pc)

    # -- rank grid ----------------------------------------------------------

    def coords(self, r: int) -> tuple[int, int]:
        """Grid coordinates ``(i, j)`` of scatter rank ``r`` (row-major)."""
        if not 0 <= r < self.R:
            raise ValueError(f"scatter rank {r} outside grid of {self.R}")
        return divmod(r, self.Pc)

    def rank_of(self, i: int, j: int) -> int:
        """Scatter rank at grid coordinates ``(i, j)``."""
        if not (0 <= i < self.Pr and 0 <= j < self.Pc):
            raise ValueError(f"({i}, {j}) outside grid {self.Pr}x{self.Pc}")
        return i * self.Pc + j

    def row_ranks(self, i: int) -> list[int]:
        """Scatter ranks of row ``i`` (the transpose_zy group, Pc ranks)."""
        return [self.rank_of(i, j) for j in range(self.Pc)]

    def col_ranks(self, j: int) -> list[int]:
        """Scatter ranks of column ``j`` (the transpose_yx group, Pr ranks)."""
        return [self.rank_of(i, j) for i in range(self.Pr)]

    # -- owned ranges -------------------------------------------------------

    def x_span(self, i: int) -> tuple[int, int]:
        return self.x_spans[i]

    def y_span(self, i: int) -> tuple[int, int]:
        return self.y_spans[i]

    def z_span(self, j: int) -> tuple[int, int]:
        return self.z_spans[j]

    def nx(self, i: int) -> int:
        lo, hi = self.x_spans[i]
        return hi - lo

    def ny(self, i: int) -> int:
        lo, hi = self.y_spans[i]
        return hi - lo

    def nz(self, j: int) -> int:
        lo, hi = self.z_spans[j]
        return hi - lo

    # -- brick shapes -------------------------------------------------------

    def y_brick_shape(self, r: int) -> tuple[int, int, int]:
        """y-pencil brick of rank ``r``: ``(nx_i, nz_j, nr2)`` (y last)."""
        i, j = self.coords(r)
        return (self.nx(i), self.nz(j), self.nr2)

    def x_brick_shape(self, r: int) -> tuple[int, int, int]:
        """x-pencil brick of rank ``r``: ``(ny_i, nz_j, nr1)`` (x last)."""
        i, j = self.coords(r)
        return (self.ny(i), self.nz(j), self.nr1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PencilGrid({self.Pr}x{self.Pc}, grid=({self.nr1},{self.nr2},{self.nr3}))"
