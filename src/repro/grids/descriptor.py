"""The FFT descriptor (``dffts`` analogue) and the R x T distributed layout.

:class:`FftDescriptor` holds the global geometry: cell, cutoffs, FFT grid
dimensions, the wave G-sphere, and its stick map.

:class:`DistributedLayout` fixes how a descriptor is spread over an
``R x T`` process grid — R the size of each *scatter* group (the ranks that
jointly compute one parallel 3D FFT) and T the number of *FFT task groups*
(concurrently transformed bands), exactly the two MPI layers of the paper:

* process ``p = r * T + t`` — so a *pack* group (fixed ``r``) is T
  consecutive ranks and a *scatter* group (fixed ``t``) is R ranks strided
  by T, reproducing the communicator patterns visible in the paper's Fig. 3
  timeline ("R sub-communicators with T neighboring ranks each" for
  pack/unpack; "T sub-communicators with R alternating ranks each" for the
  scatter);
* sticks are distributed over *all* P = R*T processes (balanced by G count);
* after the pack alltoallv, process (r, t) owns band t on the union of its
  pack group's sticks — the *group sticks* of r, stored as the concatenation
  of the members' stick lists so pack/unpack segments stay contiguous;
* z-planes are distributed over the R scatter ranks.
"""

from __future__ import annotations

import numpy as np

from repro.grids.gvectors import GSphere, build_sphere, grid_dimensions
from repro.grids.lattice import Cell
from repro.grids.pencil import PencilGrid
from repro.grids.sticks import StickMap, distribute_sticks

__all__ = ["FftDescriptor", "DistributedLayout"]


class FftDescriptor:
    """Global FFT geometry for a wave-function transform.

    Parameters
    ----------
    cell:
        The simulation cell.
    ecutwfc:
        Wave-function kinetic-energy cutoff (Rydberg); the paper's workload
        uses 80.
    dual:
        Ratio of the grid (density) cutoff to ``ecutwfc`` (QE default 4).
    """

    def __init__(self, cell: Cell, ecutwfc: float, dual: float = 4.0):
        if dual < 1.0:
            raise ValueError(f"dual must be >= 1, got {dual}")
        self.cell = cell
        self.ecutwfc = float(ecutwfc)
        self.dual = float(dual)
        self.gkcut = cell.gcut_from_ecut(ecutwfc)
        self.gcut_grid = cell.gcut_from_ecut(dual * ecutwfc)
        self.nr1, self.nr2, self.nr3 = grid_dimensions(cell, self.gcut_grid)
        self.sphere: GSphere = build_sphere(cell, self.gkcut)
        self.grid_idx = self.sphere.grid_indices((self.nr1, self.nr2, self.nr3))
        self.sticks: StickMap = StickMap.from_grid_indices(self.grid_idx)

    @property
    def ngw(self) -> int:
        """Wave-sphere G-vector count (global)."""
        return self.sphere.ngm

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """Full FFT grid dimensions ``(nr1, nr2, nr3)``."""
        return (self.nr1, self.nr2, self.nr3)

    @property
    def nnr(self) -> int:
        """Total grid points."""
        return self.nr1 * self.nr2 * self.nr3

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FftDescriptor(grid={self.grid_shape}, ngw={self.ngw}, "
            f"nsticks={self.sticks.nsticks})"
        )


class DistributedLayout:
    """Ownership bookkeeping of a descriptor over an R x T process grid.

    ``decomposition`` selects how real space is split over the R scatter
    ranks of each task group: ``"slab"`` (the paper's z-plane scheme) or
    ``"pencil"`` (a ``Pr x Pc`` grid; sticks constrained to per-row
    x-ranges so the two pencil transposes stay row/column-internal, see
    :mod:`repro.grids.pencil`).
    """

    def __init__(
        self,
        desc: FftDescriptor,
        n_scatter: int,
        n_groups: int,
        decomposition: str = "slab",
    ):
        if n_scatter < 1 or n_groups < 1:
            raise ValueError(
                f"process grid must be positive, got R={n_scatter}, T={n_groups}"
            )
        if decomposition not in ("slab", "pencil"):
            raise ValueError(
                f"decomposition must be 'slab' or 'pencil', got {decomposition!r}"
            )
        self.desc = desc
        self.R = n_scatter
        self.T = n_groups
        self.P = n_scatter * n_groups
        self.decomposition = decomposition

        #: Pencil grid geometry (``None`` for the slab scheme).
        self.pencil: PencilGrid | None = None

        #: Global stick -> owning process.
        if decomposition == "pencil":
            self.pencil = PencilGrid(
                desc.grid_shape,
                self.R,
                x_weights=np.bincount(
                    desc.sticks.coords[:, 0],
                    weights=desc.sticks.counts,
                    minlength=desc.nr1,
                ),
            )
            self.stick_owner = self._pencil_stick_owner(self.pencil)
        else:
            self.stick_owner = distribute_sticks(desc.sticks.counts, self.P)

        self._sticks_of = [
            np.flatnonzero(self.stick_owner == p) for p in range(self.P)
        ]
        self._ngw_of = np.array(
            [int(desc.sticks.counts[s].sum()) for s in self._sticks_of]
        )

        # Group sticks: concatenation over the pack group's members in t
        # order — pack/unpack exchange whole contiguous segments.
        self._group_sticks = []
        self._group_offsets = []
        for r in range(self.R):
            segments = [self._sticks_of[self.proc_of(r, t)] for t in range(self.T)]
            offsets = np.zeros(self.T + 1, dtype=np.int64)
            offsets[1:] = np.cumsum([len(s) for s in segments])
            self._group_sticks.append(
                np.concatenate(segments)
                if segments
                else np.empty(0, dtype=np.int64)
            )
            self._group_offsets.append(offsets)

        # z-plane distribution over the scatter dimension.
        base, extra = divmod(desc.nr3, self.R)
        self._npp = np.array([base + (1 if r < extra else 0) for r in range(self.R)])
        self._z_offset = np.zeros(self.R + 1, dtype=np.int64)
        self._z_offset[1:] = np.cumsum(self._npp)

        # Flat index maps (data-plane): built lazily on first data-mode use,
        # then shared by every pack/scatter/wave helper for the layout's
        # lifetime.  Meta-mode runs never pay for them.
        self._g_tables: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None
        self._local_flat: list[np.ndarray] = []
        self._group_coeff_offsets: dict[int, np.ndarray] = {}
        self._group_flat: dict[int, np.ndarray] = {}
        self._scatter_stick_offsets: np.ndarray | None = None
        self._scatter_plane_flat: np.ndarray | None = None

    def _pencil_stick_owner(self, grid: PencilGrid) -> np.ndarray:
        """Stick ownership honoring the pencil rows' x-ranges.

        Sticks with ``ix in X_i`` may only live on row ``i``'s ``Pc * T``
        processes (so transpose_zy needs no traffic outside the row); the
        same LPT G-balance as the slab scheme runs *within* each row.
        """
        desc = self.desc
        coords = desc.sticks.coords
        counts = desc.sticks.counts
        owner = np.empty(desc.sticks.nsticks, dtype=np.int64)
        for i in range(grid.Pr):
            lo, hi = grid.x_span(i)
            sticks_i = np.flatnonzero((coords[:, 0] >= lo) & (coords[:, 0] < hi))
            procs_i = np.array(
                [
                    r * self.T + t
                    for r in grid.row_ranks(i)
                    for t in range(self.T)
                ],
                dtype=np.int64,
            )
            if len(sticks_i):
                sub = distribute_sticks(counts[sticks_i], len(procs_i))
                owner[sticks_i] = procs_i[sub]
        return owner

    # -- process grid -------------------------------------------------------

    def proc_of(self, r: int, t: int) -> int:
        """Process index of scatter-rank ``r``, task-group ``t``."""
        if not (0 <= r < self.R and 0 <= t < self.T):
            raise ValueError(f"(r={r}, t={t}) outside grid {self.R}x{self.T}")
        return r * self.T + t

    def rt_of(self, p: int) -> tuple[int, int]:
        """Inverse of :meth:`proc_of`."""
        if not 0 <= p < self.P:
            raise ValueError(f"process {p} outside world of size {self.P}")
        return divmod(p, self.T)

    def pack_group(self, r: int) -> list[int]:
        """The T processes of pack group ``r`` (consecutive ranks)."""
        return [self.proc_of(r, t) for t in range(self.T)]

    def scatter_group(self, t: int) -> list[int]:
        """The R processes of scatter group ``t`` (stride-T ranks)."""
        return [self.proc_of(r, t) for r in range(self.R)]

    # -- stick ownership ------------------------------------------------------

    def sticks_of(self, p: int) -> np.ndarray:
        """Global stick indices owned by process ``p`` (ascending)."""
        return self._sticks_of[p]

    def ngw_of(self, p: int) -> int:
        """Wave-sphere G count on process ``p``'s sticks."""
        return int(self._ngw_of[p])

    def group_sticks(self, r: int) -> np.ndarray:
        """Stick indices of pack group ``r`` (members concatenated in t order)."""
        return self._group_sticks[r]

    def group_offsets(self, r: int) -> np.ndarray:
        """Segment offsets of each member inside :meth:`group_sticks`."""
        return self._group_offsets[r]

    def nst_group(self, r: int) -> int:
        """Stick count of pack group ``r``."""
        return len(self._group_sticks[r])

    # -- plane ownership ----------------------------------------------------------

    def npp(self, r: int) -> int:
        """Number of z-planes owned by scatter rank ``r``."""
        return int(self._npp[r])

    def z_offset(self, r: int) -> int:
        """First z-plane of scatter rank ``r``."""
        return int(self._z_offset[r])

    def z_slice(self, r: int) -> slice:
        """Python slice of scatter rank ``r``'s planes."""
        return slice(self.z_offset(r), self.z_offset(r) + self.npp(r))

    # -- data-mode index helpers --------------------------------------------------

    def _ensure_g_tables(self) -> None:
        """One vectorized pass building every process's G-table.

        Replaces the per-call ``np.isin`` + ``searchsorted`` scan (the old
        ``local_g_table`` body, O(ngw * log) *per call* and the dominant
        data-mode hot spot) with a single stable argsort of the G-vectors by
        owning process, done once per layout.
        """
        if self._g_tables is not None:
            return
        desc = self.desc
        stick_of_g = desc.sticks.stick_of_g
        g_owner = self.stick_owner[stick_of_g]
        # Stable sort keeps ascending global-G order within each owner —
        # exactly the packed-coefficient storage convention.
        order = np.argsort(g_owner, kind="stable")
        counts = np.bincount(g_owner, minlength=self.P)
        splits = np.zeros(self.P + 1, dtype=np.int64)
        splits[1:] = np.cumsum(counts)
        local_of_stick = np.empty(desc.sticks.nsticks, dtype=np.int64)
        for sticks in self._sticks_of:
            local_of_stick[sticks] = np.arange(len(sticks), dtype=np.int64)
        iz_all = desc.grid_idx[:, 2]
        nr3 = desc.nr3
        tables = []
        flat = []
        for p in range(self.P):
            g_idx = order[splits[p] : splits[p + 1]]
            stick_local = local_of_stick[stick_of_g[g_idx]]
            iz = iz_all[g_idx]
            tables.append((g_idx, stick_local, iz))
            flat.append(stick_local * nr3 + iz)
        self._g_tables = tables
        self._local_flat = flat

    def local_g_table(self, p: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index tables for expanding process ``p``'s packed coefficients.

        Returns ``(g_indices, stick_local, iz)``: the sphere positions of
        ``p``'s G-vectors (ascending, i.e. their order within the packed
        coefficient array), the local index of each G's stick within
        ``sticks_of(p)``, and its z grid coordinate.  Cached; computed for
        all processes in one vectorized pass on first use.
        """
        self._ensure_g_tables()
        assert self._g_tables is not None
        return self._g_tables[p]

    def local_flat_index(self, p: int) -> np.ndarray:
        """Raveled ``(stick_local, iz)`` positions of ``p``'s G-vectors.

        Flat indices into process ``p``'s own ``(nst_p, nr3)`` stick block
        (C order), in packed-coefficient order — the single-take/put twin of
        :meth:`local_g_table`.
        """
        self._ensure_g_tables()
        return self._local_flat[p]

    def group_coeff_offsets(self, r: int) -> np.ndarray:
        """``(T+1,)`` offsets of each member's coefficients in the group's
        concatenated packed-coefficient buffer (``ngw_of`` cumsum)."""
        cached = self._group_coeff_offsets.get(r)
        if cached is None:
            cached = np.zeros(self.T + 1, dtype=np.int64)
            cached[1:] = np.cumsum(
                [self.ngw_of(self.proc_of(r, t)) for t in range(self.T)]
            )
            self._group_coeff_offsets[r] = cached
        return cached

    def group_flat_index(self, r: int) -> np.ndarray:
        """Raveled positions of pack group ``r``'s G-vectors in its block.

        Flat indices into the ``(nst_group(r), nr3)`` group stick block
        (C order), member segments concatenated in t order — one fancy
        take/put with these indices replaces the per-member expand/extract
        loop.
        """
        cached = self._group_flat.get(r)
        if cached is None:
            self._ensure_g_tables()
            offsets = self.group_offsets(r)
            nr3 = self.desc.nr3
            parts = []
            for t in range(self.T):
                _g, stick_local, iz = self.local_g_table(self.proc_of(r, t))
                parts.append((offsets[t] + stick_local) * nr3 + iz)
            cached = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            self._group_flat[r] = cached
        return cached

    def scatter_stick_offsets(self) -> np.ndarray:
        """``(R+1,)`` offsets of each scatter rank's group sticks in the
        concatenated all-ranks stick order (``nst_group`` cumsum)."""
        if self._scatter_stick_offsets is None:
            offsets = np.zeros(self.R + 1, dtype=np.int64)
            offsets[1:] = np.cumsum([self.nst_group(r) for r in range(self.R)])
            self._scatter_stick_offsets = offsets
        return self._scatter_stick_offsets

    def scatter_plane_index(self) -> np.ndarray:
        """Raveled ``(ix, iy)`` plane positions of all group sticks.

        Flat indices into an ``(nr1 * nr2)``-raveled xy plane, for the
        concatenation of ``group_sticks(r')`` over ``r' = 0..R-1`` — the
        take/put map of the scatter's plane assembly/extraction.
        """
        if self._scatter_plane_flat is None:
            coords = self.desc.sticks.coords[
                np.concatenate([self._group_sticks[r] for r in range(self.R)])
                if self.R
                else np.empty(0, dtype=np.int64)
            ]
            self._scatter_plane_flat = coords[:, 0] * self.desc.nr2 + coords[:, 1]
        return self._scatter_plane_flat

    def stick_coords(self, stick_indices: np.ndarray) -> np.ndarray:
        """(ix, iy) grid coordinates of the given global sticks."""
        return self.desc.sticks.coords[stick_indices]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DistributedLayout(R={self.R}, T={self.T}, P={self.P})"
