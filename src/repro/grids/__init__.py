"""Plane-wave G-vector and data-distribution machinery.

This is the Quantum ESPRESSO substrate underneath FFTXlib: the kinetic-energy
cutoff constrains the wave function's G-vectors to a *sphere* in reciprocal
space, so the domain of the 3D FFT is a sphere inside a cube — the reason
the parallel transform needs sticks, a redistribution (scatter), and load
balancing at all (paper §II.A).

* :mod:`~repro.grids.lattice` — the simulation cell, direct/reciprocal
  lattices, ``tpiba`` units;
* :mod:`~repro.grids.gvectors` — G-sphere generation under a cutoff, QE's
  canonical ordering, FFT-grid sizing via ``good_fft_order``;
* :mod:`~repro.grids.sticks` — stick maps (the (ix, iy) columns that carry
  sphere points) and their balanced distribution over processes;
* :mod:`~repro.grids.descriptor` — the ``dffts`` analogue: grid dims, the
  sphere, the stick map, and :class:`DistributedLayout`, which fixes the
  R x T (scatter x task-group) process grid, stick ownership, plane
  ownership, and all pack/scatter index bookkeeping the pipeline needs.
"""

from repro.grids.lattice import Cell
from repro.grids.gvectors import GSphere, build_sphere, grid_dimensions
from repro.grids.sticks import StickMap, distribute_sticks
from repro.grids.pencil import PencilGrid, factor_grid, partition_spans
from repro.grids.descriptor import DistributedLayout, FftDescriptor

__all__ = [
    "Cell",
    "GSphere",
    "build_sphere",
    "grid_dimensions",
    "StickMap",
    "distribute_sticks",
    "PencilGrid",
    "factor_grid",
    "partition_spans",
    "FftDescriptor",
    "DistributedLayout",
]
