"""Stick maps and their balanced distribution.

A *stick* is an ``(ix, iy)`` column of the FFT grid that contains at least
one sphere point; the 1D z-transforms operate on whole sticks, so sticks are
the distribution unit of the G-space side of the parallel FFT.  Because the
sphere is round, sticks near the axis carry many more G-vectors than sticks
near the rim — QE balances *G-vector counts*, not stick counts, with a
greedy longest-first assignment; we reproduce that (it is what gives the
paper its near-perfect load-balance rows in Tables I/II).
"""

from __future__ import annotations

import numpy as np

__all__ = ["StickMap", "distribute_sticks"]


class StickMap:
    """The sticks of a G-sphere on a given grid.

    Attributes
    ----------
    coords:
        ``(nsticks, 2)`` wrapped grid coordinates (ix, iy) of each stick,
        in first-appearance order of the sphere's canonical G ordering.
    counts:
        ``(nsticks,)`` number of sphere G-vectors on each stick.
    stick_of_g:
        ``(ngm,)`` stick index of every sphere G-vector.
    """

    def __init__(self, coords: np.ndarray, counts: np.ndarray, stick_of_g: np.ndarray):
        self.coords = coords
        self.counts = counts
        self.stick_of_g = stick_of_g

    @property
    def nsticks(self) -> int:
        """Number of sticks."""
        return len(self.coords)

    @property
    def total_g(self) -> int:
        """Total sphere points across sticks (= the sphere's ngm)."""
        return int(self.counts.sum())

    @classmethod
    def from_grid_indices(cls, grid_indices: np.ndarray) -> "StickMap":
        """Build the stick map from the sphere's wrapped grid coordinates."""
        xy = np.ascontiguousarray(grid_indices[:, :2])
        coords, stick_of_g, counts = np.unique(
            xy, axis=0, return_inverse=True, return_counts=True
        )
        return cls(coords, counts, stick_of_g.ravel())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StickMap(nsticks={self.nsticks}, total_g={self.total_g})"


def distribute_sticks(counts: np.ndarray, n_procs: int) -> np.ndarray:
    """Greedy balanced assignment of sticks to processes.

    Sticks are assigned heaviest-first to the currently lightest process
    (ties broken by lowest process index, so the result is deterministic).
    Returns ``(nsticks,)`` owner indices.

    This is the classic LPT heuristic QE's ``sticks_base`` uses; with the
    round sphere it yields per-process G counts within a few percent of
    perfect balance, matching the paper's ~97 % load-balance factors.
    """
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    counts = np.asarray(counts)
    owners = np.empty(len(counts), dtype=np.int64)
    loads = np.zeros(n_procs, dtype=np.int64)
    # Heaviest first; stable tie-break on stick index for determinism.
    order = np.argsort(-counts, kind="stable")
    for stick in order:
        p = int(np.argmin(loads))  # argmin takes the lowest index on ties
        owners[stick] = p
        loads[p] += counts[stick]
    return owners
