"""Simulation cell: direct and reciprocal lattice in QE conventions.

Lengths are in Bohr; the lattice parameter ``alat`` scales the (dimensionless)
direct lattice vectors ``at`` (columns, units of ``alat``), and the reciprocal
vectors ``bg`` are in units of ``tpiba = 2*pi/alat`` so that a G-vector with
Miller indices ``m`` is ``G = tpiba * (bg @ m)`` and kinetic-energy cutoffs in
Rydberg translate to ``|bg @ m|^2 <= ecut / tpiba^2`` (Rydberg atomic units,
where the kinetic energy of a plane wave is ``|G|^2``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Cell"]


class Cell:
    """A periodic simulation cell.

    Parameters
    ----------
    alat:
        Lattice parameter in Bohr (the paper's workload uses 20).
    at:
        3x3 matrix of direct lattice vectors as *columns*, in units of
        ``alat``; defaults to simple cubic (the FFTXlib test default).
    """

    def __init__(self, alat: float, at: np.ndarray | None = None):
        if alat <= 0:
            raise ValueError(f"alat must be positive, got {alat}")
        self.alat = float(alat)
        self.at = np.eye(3) if at is None else np.asarray(at, dtype=float)
        if self.at.shape != (3, 3):
            raise ValueError(f"at must be 3x3, got shape {self.at.shape}")
        det = np.linalg.det(self.at)
        if abs(det) < 1e-12:
            raise ValueError("lattice vectors are singular")
        # Reciprocal lattice in tpiba units: bg^T @ at = identity.
        self.bg = np.linalg.inv(self.at).T

    @property
    def tpiba(self) -> float:
        """``2*pi/alat`` — the natural reciprocal-space unit (Bohr^-1)."""
        return 2.0 * np.pi / self.alat

    @property
    def tpiba2(self) -> float:
        """``tpiba**2`` (cutoff conversions)."""
        return self.tpiba**2

    @property
    def volume(self) -> float:
        """Cell volume in Bohr^3."""
        return abs(np.linalg.det(self.at)) * self.alat**3

    def g_norm2(self, millers: np.ndarray) -> np.ndarray:
        """``|G|^2`` in tpiba^2 units for Miller-index rows ``(n, 3)``."""
        m = np.atleast_2d(np.asarray(millers, dtype=float))
        g = m @ self.bg.T  # row i -> bg @ m_i
        return np.einsum("ij,ij->i", g, g)

    def gcut_from_ecut(self, ecut_ry: float) -> float:
        """Cutoff radius^2 in tpiba^2 units for an energy cutoff in Rydberg."""
        if ecut_ry <= 0:
            raise ValueError(f"ecut must be positive, got {ecut_ry}")
        return ecut_ry / self.tpiba2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell(alat={self.alat:g}, volume={self.volume:.6g})"
