"""G-sphere generation and FFT-grid sizing.

The wave function is expanded on Miller-index vectors with
``|bg @ m|^2 <= gkcut`` (a sphere of radius ``sqrt(gkcut)`` in tpiba units);
the FFT grid must hold the *density* sphere (``dual * ecutwfc``, dual = 4 by
default), so each dimension is at least ``2*sqrt(gcut)*|at_i| + 1`` rounded
up to a good FFT order — the standard QE formulas.

Ordering matters for reproducibility: G-vectors are sorted by ``|G|^2`` with
a deterministic Miller-index tie-break, mirroring QE's canonical ``gvect``
ordering (tests rely on the layout being identical across runs and across
process counts).
"""

from __future__ import annotations

import numpy as np

from repro.fft.goodfft import good_fft_order
from repro.grids.lattice import Cell

__all__ = ["GSphere", "build_sphere", "grid_dimensions"]


def grid_dimensions(cell: Cell, gcut: float) -> tuple[int, int, int]:
    """Good FFT orders covering the sphere of squared radius ``gcut``.

    ``gcut`` is in tpiba^2 units (use the *density* cutoff here).
    """
    if gcut <= 0:
        raise ValueError(f"gcut must be positive, got {gcut}")
    radius = np.sqrt(gcut)
    dims = []
    for i in range(3):
        extent = np.linalg.norm(cell.at[:, i])
        n_min = 2 * int(radius * extent) + 1
        dims.append(good_fft_order(n_min))
    return tuple(dims)  # type: ignore[return-value]


class GSphere:
    """The set of Miller indices inside a cutoff sphere, canonically ordered.

    Attributes
    ----------
    millers:
        ``(ngm, 3)`` integer array, sorted by ``|G|^2`` (tie-break on index).
    g2:
        ``(ngm,)`` squared norms in tpiba^2 units.
    gcut:
        The cutoff used to build the sphere.
    """

    def __init__(self, millers: np.ndarray, g2: np.ndarray, gcut: float):
        self.millers = millers
        self.g2 = g2
        self.gcut = gcut

    @property
    def ngm(self) -> int:
        """Number of G-vectors in the sphere."""
        return len(self.millers)

    def minus_index(self) -> np.ndarray:
        """Index of ``-G`` for every sphere member (the Gamma-trick table).

        ``millers[minus_index()[i]] == -millers[i]``.  The sphere is
        inversion symmetric by construction, so the mapping is a
        permutation (an involution fixing only G = 0).
        """
        lookup = {tuple(m): i for i, m in enumerate(self.millers)}
        out = np.empty(self.ngm, dtype=np.int64)
        for i, m in enumerate(self.millers):
            try:
                out[i] = lookup[(-m[0], -m[1], -m[2])]
            except KeyError:  # pragma: no cover - sphere symmetry guarantee
                raise RuntimeError(f"sphere is not inversion symmetric at G={m}") from None
        return out

    def grid_indices(self, dims: tuple[int, int, int]) -> np.ndarray:
        """Wrap Miller indices onto the periodic FFT grid ``dims``.

        Returns ``(ngm, 3)`` non-negative grid coordinates; raises if the
        grid is too small to represent the sphere without aliasing.
        """
        nr = np.asarray(dims)
        m = self.millers
        half = (nr - 1) // 2
        if np.any(m.max(axis=0) > half) or np.any(m.min(axis=0) < -(nr // 2)):
            raise ValueError(
                f"grid {dims} too small for sphere extent "
                f"[{m.min(axis=0)}, {m.max(axis=0)}]"
            )
        return np.mod(m, nr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GSphere(ngm={self.ngm}, gcut={self.gcut:g})"


def build_sphere(cell: Cell, gcut: float) -> GSphere:
    """All Miller indices with ``|bg @ m|^2 <= gcut``, canonically ordered."""
    if gcut <= 0:
        raise ValueError(f"gcut must be positive, got {gcut}")
    radius = np.sqrt(gcut)
    # Conservative per-axis bound: |m_i| <= radius * |at_i| (exact for
    # orthogonal cells; for general cells at is the right metric because
    # m_i = a_i . G / tpiba and |a_i . G| <= |a_i| |G|).
    bounds = [int(np.ceil(radius * np.linalg.norm(cell.at[:, i]))) for i in range(3)]
    axes = [np.arange(-b, b + 1) for b in bounds]
    mi, mj, mk = np.meshgrid(*axes, indexing="ij")
    millers = np.column_stack([mi.ravel(), mj.ravel(), mk.ravel()])
    g2 = cell.g_norm2(millers)
    keep = g2 <= gcut + 1e-12
    millers = millers[keep]
    g2 = g2[keep]
    # Canonical order: by |G|^2, then lexicographic Miller tie-break.
    order = np.lexsort((millers[:, 2], millers[:, 1], millers[:, 0], np.round(g2, 10)))
    return GSphere(millers[order], g2[order], gcut)
