"""``python -m repro`` — the same CLI as the ``fftxlib-repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
