#!/usr/bin/env python
"""Tuning the FFT task-group knob (the paper's §II.A discussion).

"First, the number of task groups is equal to one ... all the cost is
shifted to the scatter routine. The opposite is the case where the number
of task groups is equal to the number of MPI processes ... much more time
will be consumed during the execution of the pack/unpack subroutines.  All
the options between these two extreme cases should be benchmarked."

This example does exactly that at a fixed process count, splitting the MPI
time between the two communicator layers — the measurement FFTXlib was
built to make easy.

Run:  python examples/taskgroup_tuning.py [--procs 64] [--quick]
"""

import argparse

from repro.experiments.common import paper_config
from repro.perf.tracer import trace_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=64, help="total MPI processes")
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    args = parser.parse_args()

    overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32) if args.quick else {}

    print(f"{'ntg':>5} {'runtime':>12} {'pack MPI':>12} {'scatter MPI':>12}")
    ntg = 1
    while ntg <= args.procs:
        if args.procs % ntg == 0:
            nbnd = overrides.get("nbnd", 128)
            if (nbnd // 2) % ntg == 0:  # band groups must divide evenly
                cfg = paper_config(args.procs // ntg, "original", taskgroups=ntg, **overrides)
                result, trace = trace_run(cfg)
                pack_t = sum(r.duration for r in trace.mpi if r.comm_name.startswith("pack"))
                scatter_t = sum(
                    r.duration for r in trace.mpi if r.comm_name.startswith("scatter")
                )
                print(
                    f"{ntg:>5} {result.phase_time * 1e3:>10.2f} ms "
                    f"{pack_t * 1e3:>10.2f} ms {scatter_t * 1e3:>10.2f} ms"
                )
        ntg *= 2

    print(
        "\nntg=1 puts all communication in the scatter (all processes);\n"
        f"ntg={args.procs} makes every scatter communicator a singleton and\n"
        "shifts the G-vector redistribution into pack/unpack."
    )


if __name__ == "__main__":
    main()
