#!/usr/bin/env python
"""Scaling study: the paper's Fig. 2/Fig. 6 sweep, self-contained.

Sweeps the FFT phase over MPI rank counts for the original (FFT task
groups) and the OmpSs per-FFT executor on the full paper workload, printing
runtimes, speedups and average IPC — the headline comparison of the paper.

Run:  python examples/scaling_study.py [--quick]
"""

import argparse

from repro.core import run_fft_phase
from repro.experiments.common import paper_config
from repro.perf.report import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload and rank sweep (seconds instead of minutes)",
    )
    args = parser.parse_args()

    if args.quick:
        ranks = (1, 2, 4, 8)
        overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32)
    else:
        ranks = (1, 2, 4, 8, 16, 32)
        overrides = {}

    rows = {}
    for version in ("original", "ompss_perfft"):
        for n in ranks:
            cfg = paper_config(n, version, **overrides)
            result = run_fft_phase(cfg)
            rows[(version, n)] = result
            print(
                f"{n:>3}x8 {version:<13} {result.phase_time * 1e3:9.2f} ms  "
                f"avg IPC {result.average_ipc:.3f}"
            )

    print()
    series = [
        (f"{n}x8 {v}", rows[(v, n)].phase_time)
        for v in ("original", "ompss_perfft")
        for n in ranks
    ]
    print(format_series(series, title="FFT phase runtime"))

    print("\nOmpSs speedup per configuration:")
    for n in ranks:
        orig = rows[("original", n)].phase_time
        ompss = rows[("ompss_perfft", n)].phase_time
        print(f"  {n:>3}x8: {(1 - ompss / orig) * 100:+6.1f}%")


if __name__ == "__main__":
    main()
