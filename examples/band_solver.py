#!/usr/bin/env python
"""Band structure on top of the FFT kernel — the Quantum ESPRESSO use case.

The paper's closing argument is that "an increased performance in the
FFTXlib will likewise increase the performance of the entire Quantum
ESPRESSO code": the kernel it optimizes is the V(r)*psi application inside
every H*psi of a plane-wave DFT run.  This example closes that loop with
the library's miniature band solver:

1. build a plane-wave Hamiltonian H = T + V(r) on the FFT descriptor;
2. solve for the lowest bands with Davidson-style subspace iteration,
   routing every H application through the *simulated distributed
   pipeline* (any executor);
3. compare the eigenvalues against exact dense diagonalisation, and report
   how much simulated KNL time each executor's kernel spent — i.e. what
   the paper's optimization would buy this (toy) QE workload.

Run:  python examples/band_solver.py
"""

import numpy as np

from repro.core import RunConfig
from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import Hamiltonian, dense_hamiltonian_matrix, solve_bands


def main() -> None:
    desc = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
    potential = make_potential(desc.grid_shape, seed=4)
    print(f"basis: {desc.ngw} plane waves, grid {desc.grid_shape}")

    exact = np.linalg.eigvalsh(dense_hamiltonian_matrix(desc, potential))[:4]
    print(f"exact lowest eigenvalues (Ry): {np.round(exact, 6)}")

    print("\nsolving with the dense engine:")
    ham = Hamiltonian(desc, potential)
    res = solve_bands(ham, 4, tol=1e-11)
    print(f"  {res.n_iterations} iterations, converged={res.converged}")
    print(f"  eigenvalues: {np.round(res.eigenvalues, 6)}")
    print(f"  max |error|: {np.abs(res.eigenvalues - exact).max():.2e} Ry")

    print("\nsolving through the simulated distributed pipeline:")
    for version in ("original", "ompss_perfft"):
        engine = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2,
            version=version, data_mode=True,
        )
        ham = Hamiltonian(desc, potential)
        res = solve_bands(ham, 4, engine=engine, tol=1e-9, max_iterations=40)
        err = np.abs(res.eigenvalues - exact).max()
        print(
            f"  {version:<14} {res.n_iterations} iterations, "
            f"max |error| {err:.2e} Ry, "
            f"simulated kernel time {res.simulated_time * 1e3:.2f} ms"
        )

    print(
        "\nIdentical eigenvalues from every executor — the schedules differ,"
        "\nthe numerics do not; only the simulated kernel time changes."
    )


if __name__ == "__main__":
    main()
