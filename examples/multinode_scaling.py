#!/usr/bin/env python
"""Multi-node scaling: where each optimization pays off (§IV's claim).

The paper predicts that its first optimization (per-step tasks overlapping
communication with computation) targets "large scales where the impact of
the communication is very high", while the second (per-FFT tasks softening
contention) targets compute-bound nodes — but it could only measure one
node.  This example sweeps simulated clusters and prints the crossover.

Run:  python examples/multinode_scaling.py [--quick]
"""

import argparse

from repro.core import run_fft_phase
from repro.experiments.common import paper_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    args = parser.parse_args()

    if args.quick:
        nodes_list = (1, 2)
        overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32)
    else:
        nodes_list = (1, 2, 4)
        overrides = {}

    variants = [
        ("original", "original", None),
        ("opt1 per-step", "ompss_steps", None),
        ("opt2 per-fft", "ompss_perfft", None),
        ("combined (ts)", "ompss_perfft", True),
    ]

    print(f"{'nodes':>6} {'variant':<16} {'runtime':>12} {'vs original':>12}")
    for nodes in nodes_list:
        base = None
        for label, version, switching in variants:
            cfg = paper_config(
                8 * nodes, version, n_nodes=nodes, task_switching=switching, **overrides
            )
            result = run_fft_phase(cfg)
            t = result.phase_time
            if base is None:
                base = t
            gain = (1 - t / base) * 100
            print(f"{nodes:>6} {label:<16} {t * 1e3:>10.2f} ms {gain:>+10.1f}%")
        print()

    print(
        "Watch the crossover: the de-synchronizing per-FFT version wins the\n"
        "compute-bound single node (what the paper measured); the overlapping\n"
        "per-step version takes over once inter-node communication dominates."
    )


if __name__ == "__main__":
    main()
