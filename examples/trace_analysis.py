#!/usr/bin/env python
"""The paper's analysis workflow: trace a run, export it, decompose it.

Mirrors Section III: record an execution with the (Extrae-like) tracer,
write a Paraver-style trace to disk, print the per-phase IPC summary, the
communicator structure, and the POP efficiency factors with the
ideal-network what-if replay.

Run:  python examples/trace_analysis.py [--ranks 8] [--version original]
"""

import argparse
import pathlib

from repro.core.driver import run_fft_phase
from repro.experiments.common import paper_config
from repro.machine import knl_parameters
from repro.perf import (
    communicator_structure,
    factors_from_run,
    format_factor_table,
    ideal_network,
    phase_summary,
    trace_run,
    write_prv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument(
        "--version", default="original",
        choices=["original", "ompss_perfft", "ompss_steps", "ompss_combined"],
    )
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--out", default="fftxlib_trace", help="trace file stem")
    args = parser.parse_args()

    overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32) if args.quick else {}
    cfg = paper_config(args.ranks, args.version, **overrides)

    print(f"tracing {cfg.label()} ({cfg.n_mpi_ranks} processes x "
          f"{cfg.threads_per_rank} threads)...")
    result, trace = trace_run(cfg)
    print(f"FFT phase: {result.phase_time * 1e3:.2f} ms, "
          f"{len(trace.compute)} compute records, {len(trace.mpi)} MPI records")

    prv = write_prv(pathlib.Path(args.out), trace)
    print(f"Paraver trace written: {prv} (+ .pcf, .row)")

    freq = knl_parameters().frequency_hz
    print("\nper-phase summary (the Fig. 3 reading):")
    print(f"  {'phase':<16} {'time':>10} {'IPC':>7} {'count':>7}")
    for phase, stats in sorted(phase_summary(trace, freq).items()):
        print(
            f"  {phase:<16} {stats['time'] * 1e3:>8.2f} ms "
            f"{stats['ipc']:>7.3f} {int(stats['count']):>7}"
        )

    print("\ncommunicator structure (the two MPI layers):")
    for name, info in sorted(communicator_structure(trace).items()):
        print(f"  {name:<10} ranks {info['streams']}  "
              f"{info['calls']} calls, {info['bytes'] / 1e6:.1f} MB")

    print("\nPOP efficiency factors (with ideal-network replay):")
    ideal = run_fft_phase(cfg, knl=ideal_network())
    factors = factors_from_run(result, ideal_time=ideal.phase_time)
    print(format_factor_table([(cfg.label(), factors)]))


if __name__ == "__main__":
    main()
