#!/usr/bin/env python
"""Quickstart: run one simulated FFT phase and validate the numerics.

This is the smallest end-to-end use of the library: configure a workload,
execute the distributed forward-V(r)-backward kernel on the simulated KNL
node with real data, check the result against the dense single-grid
reference, and write the run manifest — the JSON artifact the ``perf diff``
and ``perf check`` commands consume.

Run:  python examples/quickstart.py [--manifest PATH]

Without ``--manifest`` the manifest goes to a temporary directory (the
script never litters the working directory).
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro.core import RunConfig, run_fft_phase
from repro.telemetry.manifest import build_manifest, write_manifest


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="where to write the run manifest (default: a temp directory)",
    )
    args = parser.parse_args(argv)

    # A small workload (the paper's is ecutwfc=80, alat=20, nbnd=128): a
    # 12 Ry cutoff in a 5 Bohr cell gives a 15^3-ish grid that validates in
    # under a second.  Two first-layer ranks x two FFT task groups = 4
    # simulated MPI processes.
    config = RunConfig(
        ecutwfc=12.0,
        alat=5.0,
        nbnd=8,
        ranks=2,
        taskgroups=2,
        version="original",
        data_mode=True,  # move real numpy payloads so we can validate
        telemetry=True,  # record metrics/spans/trace for the manifest
    )
    print(f"workload: {config.label()}, {config.n_mpi_ranks} MPI processes, "
          f"{config.n_complex_bands} complex band FFTs")

    t0 = time.perf_counter()
    result = run_fft_phase(config)
    wall = time.perf_counter() - t0

    print(f"grid:            {result.desc.grid_shape}, "
          f"{result.desc.ngw} G-vectors, {result.desc.sticks.nsticks} sticks")
    print(f"FFT phase time:  {result.phase_time * 1e3:.3f} ms (simulated)")
    print(f"average IPC:     {result.average_ipc:.3f}")

    error = result.validate()
    print(f"max relative error vs dense reference: {error:.2e}")
    assert error < 1e-12, "distributed result diverged from the reference"

    if args.manifest is not None:
        manifest_path = Path(args.manifest)
    else:
        manifest_path = Path(tempfile.mkdtemp(prefix="repro-")) / "quickstart.json"
    written = write_manifest(manifest_path, build_manifest(result, wall_time_s=wall))
    print(f"run manifest:    {written}")

    # The same workload with the paper's per-FFT OmpSs tasks — different
    # schedule, identical numerics.
    task_config = RunConfig(
        ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2,
        version="ompss_perfft", data_mode=True,
    )
    task_result = run_fft_phase(task_config)
    print(f"\nompss_perfft:    {task_result.phase_time * 1e3:.3f} ms, "
          f"error {task_result.validate():.2e}")


if __name__ == "__main__":
    main()
