#!/usr/bin/env python
"""Quickstart: run one simulated FFT phase and validate the numerics.

This is the smallest end-to-end use of the library: configure a workload,
execute the distributed forward-V(r)-backward kernel on the simulated KNL
node with real data, check the result against the dense single-grid
reference, and look at the basic performance outputs.

Run:  python examples/quickstart.py
"""

from repro.core import RunConfig, run_fft_phase


def main() -> None:
    # A small workload (the paper's is ecutwfc=80, alat=20, nbnd=128): a
    # 12 Ry cutoff in a 5 Bohr cell gives a 15^3-ish grid that validates in
    # under a second.  Two first-layer ranks x two FFT task groups = 4
    # simulated MPI processes.
    config = RunConfig(
        ecutwfc=12.0,
        alat=5.0,
        nbnd=8,
        ranks=2,
        taskgroups=2,
        version="original",
        data_mode=True,  # move real numpy payloads so we can validate
    )
    print(f"workload: {config.label()}, {config.n_mpi_ranks} MPI processes, "
          f"{config.n_complex_bands} complex band FFTs")

    result = run_fft_phase(config)

    print(f"grid:            {result.desc.grid_shape}, "
          f"{result.desc.ngw} G-vectors, {result.desc.sticks.nsticks} sticks")
    print(f"FFT phase time:  {result.phase_time * 1e3:.3f} ms (simulated)")
    print(f"average IPC:     {result.average_ipc:.3f}")

    error = result.validate()
    print(f"max relative error vs dense reference: {error:.2e}")
    assert error < 1e-12, "distributed result diverged from the reference"

    # The same workload with the paper's per-FFT OmpSs tasks — different
    # schedule, identical numerics.
    task_config = RunConfig(
        ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2,
        version="ompss_perfft", data_mode=True,
    )
    task_result = run_fft_phase(task_config)
    print(f"\nompss_perfft:    {task_result.phase_time * 1e3:.3f} ms, "
          f"error {task_result.validate():.2e}")


if __name__ == "__main__":
    main()
