#!/usr/bin/env python
"""Band structure along Gamma-X-M-Gamma (ASCII plot).

A production-shaped QE workload in miniature: the k-point loop of a band
plot, where every point re-solves H(k) = |k+G|^2 + V(r) and every H*psi
inside the solver is the FFT kernel the paper optimizes.  Prints the
energies along the path as an ASCII band diagram.

Run:  python examples/band_structure_path.py
"""

import numpy as np

from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import band_structure, k_path


def ascii_bands(bs, height: int = 18) -> str:
    lo = bs.energies.min()
    hi = bs.energies.max()
    span = max(hi - lo, 1e-9)
    n_k = len(bs.kpoints)
    grid = [[" "] * n_k for _ in range(height)]
    for b in range(bs.energies.shape[1]):
        for i in range(n_k):
            row = int((bs.energies[i, b] - lo) / span * (height - 1))
            grid[height - 1 - row][i] = str(b % 10)
    lines = [f"{hi:8.3f} Ry |" + "".join(grid[0])]
    lines += ["            |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{lo:8.3f} Ry |" + "".join(grid[-1]))
    return "\n".join(lines)


def main() -> None:
    desc = FftDescriptor(Cell(alat=5.0), ecutwfc=10.0)
    potential = make_potential(desc.grid_shape, seed=4)
    print(f"basis: {desc.ngw} plane waves, grid {desc.grid_shape}")

    path = k_path(["G", "X", "M", "G"], n_per_segment=7)
    print(f"solving {len(path)} k-points x 4 bands ...")
    bs = band_structure(desc, potential, path, n_bands=4, tol=1e-8)

    print()
    print(ascii_bands(bs))
    print("             " + "G" + " " * 5 + "X" + " " * 5 + "M" + " " * 5 + "G")
    print(f"\nband widths (dispersion): {np.round(bs.band_width, 3)} Ry")


if __name__ == "__main__":
    main()
