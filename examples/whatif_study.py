#!/usr/bin/env python
"""What-if study: replay the FFT phase on parametrically altered machines.

The Dimemas-style companion to the paper's analysis: instead of tracing one
machine, sweep the machine itself.  How sensitive is the FFT phase to MPI
latency?  To memory bandwidth?  What would a KNL with twice the bandwidth
have made of the original version's contention problem?

Run:  python examples/whatif_study.py [--quick]
"""

import argparse

from repro.experiments.common import paper_config
from repro.perf.whatif import runtime_attribution, whatif_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    args = parser.parse_args()

    overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32) if args.quick else {}
    cfg = paper_config(args.ranks, "original", **overrides)

    print(f"workload: {cfg.label()}\n")
    print("memory-bandwidth sweep (the contention knob):")
    base_bw = 6.9e10
    for factor, time in zip(
        (0.5, 1.0, 2.0, 4.0),
        [t for _v, t in whatif_sweep(cfg, "mem_bandwidth", [base_bw * f for f in (0.5, 1.0, 2.0, 4.0)])],
    ):
        print(f"  {factor:4.1f}x bandwidth: {time * 1e3:8.2f} ms")

    print("\nMPI latency sweep:")
    for lat, time in whatif_sweep(cfg, "net_latency", [0.0, 3e-6, 3e-5, 3e-4]):
        print(f"  {lat * 1e6:6.1f} us/message: {time * 1e3:8.2f} ms")

    print("\nruntime attribution (lift one bottleneck at a time):")
    attr = runtime_attribution(cfg)
    measured = attr["measured"]
    print(f"  measured               {measured * 1e3:8.2f} ms")
    for name in ("ideal_network", "infinite_bandwidth", "no_jitter"):
        gain = (1 - attr[name] / measured) * 100
        print(f"  {name:<22} {attr[name] * 1e3:8.2f} ms  ({gain:+5.1f}% if lifted)")

    print(
        "\nThe contention share is what the paper's per-FFT tasks partially"
        "\nrecover by de-synchronizing the compute phases."
    )


if __name__ == "__main__":
    main()
