#!/usr/bin/env python
"""ASCII rendering of the Fig. 7 timelines: lock-step vs de-synchronized.

Traces the original and the per-FFT OmpSs version on the same workload and
draws each stream's compute phases over time as characters (one column per
time bucket, one row per stream):

    .  idle / in MPI          z  fft_z            X  fft_xy (main phase)
    p  prepare/pack/unpack    s  scatter reorder  v  vofr

In the original version the X blocks line up vertically across all rows
(synchronized high-intensity phases -> bandwidth collisions); in the OmpSs
version they scatter (de-synchronization -> higher IPC).

Run:  python examples/desync_timeline.py [--quick]
"""

import argparse

from repro.experiments.common import paper_config
from repro.perf.tracer import trace_run

from repro.perf.report import render_timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    args = parser.parse_args()

    overrides = dict(ecutwfc=30.0, alat=10.0, nbnd=32) if args.quick else {}
    for version in ("original", "ompss_perfft"):
        cfg = paper_config(args.ranks, version, **overrides)
        result, trace = trace_run(cfg)
        print(f"\n=== {cfg.label()}  ({result.phase_time * 1e3:.2f} ms) ===")
        print(render_timeline(trace, width=110, max_rows=16))
    print(
        "\nNote how the X (fft_xy) columns align across streams in the"
        " original\nversion but stagger in the OmpSs version — the"
        " de-synchronization that\nraises the main phase's IPC (paper"
        " Fig. 7)."
    )


if __name__ == "__main__":
    main()
