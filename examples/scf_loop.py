#!/usr/bin/env python
"""A full self-consistent field loop on the simulated machine.

The complete Quantum ESPRESSO story in miniature: an SCF cycle whose every
Hamiltonian application routes the V(r)*psi kernel — the code the paper
optimizes — through the simulated distributed FFT pipeline.  Prints the
convergence history, the fractional (smeared) occupations across the
near-degenerate shell, and how much simulated KNL kernel time the whole
calculation spent under the original vs. the OmpSs executor.

Run:  python examples/scf_loop.py
"""

from repro.core import RunConfig
from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import run_scf


def main() -> None:
    desc = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
    v_ext = make_potential(desc.grid_shape, seed=4)
    print(f"basis: {desc.ngw} plane waves, grid {desc.grid_shape}")

    print("\nSCF with the dense engine (2 electrons, repulsive coupling):")
    res = run_scf(desc, v_ext, n_electrons=2, coupling=2.0, tol=1e-8, max_iterations=80)
    print(f"  converged in {res.n_iterations} iterations; E = {res.total_energy:.6f} Ry")
    print(f"  occupations: {res.occupations.round(3)}")
    print("  residual history:", " ".join(f"{r:.1e}" for r in res.residual_history[:6]), "...")

    print("\nSCF through the simulated distributed pipeline:")
    for version in ("original", "ompss_perfft"):
        engine = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=16, ranks=2, taskgroups=2,
            version=version, data_mode=True,
        )
        res = run_scf(
            desc, v_ext, n_electrons=2, coupling=2.0, tol=1e-6,
            max_iterations=40, engine=engine, band_tol=1e-8,
        )
        print(
            f"  {version:<14} E = {res.total_energy:.6f} Ry in {res.n_iterations} "
            f"iterations; simulated kernel time {res.simulated_time * 1e3:.1f} ms"
        )

    print(
        "\nSame physics from every executor; the OmpSs kernel simply spends"
        "\nless simulated machine time — the paper's gain, compounded over"
        "\nevery H|psi> of a production run."
    )


if __name__ == "__main__":
    main()
