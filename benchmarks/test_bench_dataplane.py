"""Data-plane microbenchmarks: arenas, index-map marshalling, FFT combine.

Times the layers the zero-allocation data plane is built from, bottom up:

* one arena acquire/release cycle (the pooled hot path),
* the batched group expand/extract against the cached flat index maps,
* the batched z-stick FFT writing into an arena ``out`` buffer,
* one full reference data-mode run, reporting the ``dataplane`` counters
  the run manifest exports.

Absolute bands/s are tracked by the committed ratchet baseline
``BENCH_dataplane.json`` (see ``perf_guard.py --target dataplane``); these
benchmarks only assert structural facts that hold at any machine speed.
"""

import numpy as np

from repro.core.driver import RunConfig, run_fft_phase
from repro.core.wave import expand_group_block, extract_group_coefficients
from repro.core.workspace import Workspace
from repro.fft import cft_1z
from repro.grids.descriptor import Cell, DistributedLayout, FftDescriptor

_RNG = np.random.default_rng(7)


def _reference_config():
    return RunConfig(
        ranks=8,
        taskgroups=8,
        version="original",
        ecutwfc=30.0,
        alat=10.0,
        nbnd=32,
        data_mode=True,
    )


def _reference_layout():
    desc = FftDescriptor(Cell(alat=10.0), ecutwfc=30.0)
    return DistributedLayout(desc, n_scatter=8, n_groups=8)


def test_bench_arena_acquire_release(benchmark):
    ws = Workspace()
    shape = (241, 35)  # the reference workload's group stick block

    def cycle():
        buf = ws.acquire("stick_block", shape)
        ws.release(buf)
        return buf

    buf = benchmark(cycle)
    assert buf.shape == shape
    stats = ws.stats()
    assert stats["alloc_misses"] == 1  # everything after the first is a hit
    assert stats["reuse_hits"] == stats["acquires"] - 1


def test_bench_expand_group_block(benchmark):
    layout = _reference_layout()
    ws = Workspace()
    r = 0
    offsets = layout.group_coeff_offsets(r)
    member_coeffs = [
        _RNG.standard_normal(int(offsets[t + 1] - offsets[t]))
        + 1j * _RNG.standard_normal(int(offsets[t + 1] - offsets[t]))
        for t in range(layout.T)
    ]
    out = np.empty((layout.nst_group(r), layout.desc.nr3), dtype=np.complex128)
    block = benchmark(
        expand_group_block, layout, r, member_coeffs, out=out, workspace=ws
    )
    assert block is out
    # The staging buffer cycles through the arena: one miss, then all hits.
    stats = ws.stats()
    assert stats["alloc_misses"] == 1
    assert stats["live"] == 0


def test_bench_extract_group_coefficients(benchmark):
    layout = _reference_layout()
    r = 0
    block = _RNG.standard_normal(
        (layout.nst_group(r), layout.desc.nr3)
    ) + 1j * _RNG.standard_normal((layout.nst_group(r), layout.desc.nr3))
    out = np.empty(int(layout.group_coeff_offsets(r)[-1]), dtype=np.complex128)
    parts = benchmark(extract_group_coefficients, layout, r, block, out=out)
    assert len(parts) == layout.T
    # Parts are zero-copy row slices of the gather destination.
    assert all(p.base is out for p in parts)


def test_bench_cft_1z_into_arena(benchmark):
    layout = _reference_layout()
    shape = (layout.nst_group(0), layout.desc.nr3)
    sticks = _RNG.standard_normal(shape) + 1j * _RNG.standard_normal(shape)
    out = np.empty(shape, dtype=np.complex128)
    res = benchmark(cft_1z, sticks, 1, out=out)
    assert res is out
    np.testing.assert_array_equal(
        res.view(np.float64), cft_1z(sticks, 1).view(np.float64)
    )


def test_bench_reference_run_dataplane_counters(run_once):
    """Full reference data-mode run; prints the manifest's counters."""
    cfg = _reference_config()
    run_fft_phase(cfg)  # warm geometry/plan caches and the buffer arenas
    result = run_once(run_fft_phase, cfg)
    dp = result.dataplane
    print(f"\ndataplane counters: {dp}")
    assert dp is not None
    # A warm run recycles every marshalling buffer: no new allocations.
    assert dp["alloc_misses"] == 0
    assert dp["reuse_hits"] == dp["acquires"]
    # Balanced checkouts: the run returns everything it borrowed.
    assert dp["live"] == 0
    assert dp["acquires"] == dp["releases"]
    assert dp["bytes_resident"] > 0
