"""Benchmark: tuned-vs-default across the autotuner's workload matrix."""

from repro.experiments import run_tuning
from repro.tuning.digest import KNOB_FIELDS

#: The perf_guard reference matrix, small enough for the benchmark lane.
CELLS = (
    ("2x2 original", 2, "original", 2, 1),
    ("2 ompss_perfft", 2, "ompss_perfft", 2, 1),
    ("4x2 original 2n", 4, "original", 2, 2),
)


def test_bench_tuning(run_once):
    report = run_once(
        run_tuning,
        ecutwfc=12.0,
        alat=5.0,
        nbnd=8,
        cells=CELLS,
        top_k=4,
        survivors=2,
    )
    print("\n" + report.text)

    data = report.data
    assert data["n_cells"] == len(CELLS)

    # The incumbent always competes in the final rung, so a correct search
    # never loses a cell — the acceptance bar (>= 70%) sits well below the
    # construction guarantee (100%).
    assert data["win_rate"] >= 0.70
    assert data["median_speedup"] >= 1.0
    assert data["max_speedup"] >= data["median_speedup"]

    # The search must actually move knobs somewhere in the matrix, not just
    # rubber-stamp every default (the matrix includes deliberately poor
    # defaults such as ntg=2 on communication-heavy cells).
    assert data["changed_cells"] >= 1

    for cell in data["cells"]:
        assert cell["tuned_s"] <= cell["default_s"] * (1 + 1e-12)
        assert set(cell["tuned_knobs"]) <= set(KNOB_FIELDS)
        assert cell["evaluated"] >= 2  # more than the incumbent alone
