"""Benchmark: Table I — POP factors of the original version, 1x8..16x8."""

import pytest

from repro.experiments import PAPER, run_table1


def test_bench_table1(run_once):
    report = run_once(run_table1)
    print("\n" + report.text)

    cols = report.data["columns"]
    paper = PAPER["table1"]
    labels = PAPER["config_labels"]

    # Cell-level agreement for the two load-bearing rows of the analysis:
    # the IPC-scalability collapse and the communication-efficiency decline.
    for i, label in enumerate(labels):
        measured = cols[label]["-> IPC Scalability"] * 100
        assert measured == pytest.approx(paper["-> IPC Scalability"][i], abs=6.0), label
        measured = cols[label]["-> Communication Efficiency"] * 100
        assert measured == pytest.approx(paper["-> Communication Efficiency"][i], abs=6.0), label

    # Global efficiency within a few points everywhere.
    for i, label in enumerate(labels):
        measured = cols[label]["Global Efficiency"] * 100
        assert measured == pytest.approx(paper["Global Efficiency"][i], abs=7.0), label

    # Monotone declines, as in the paper.
    ipc = [cols[l]["-> IPC Scalability"] for l in labels]
    assert all(a >= b for a, b in zip(ipc, ipc[1:]))
    # Load balance and instruction scalability stay high (the "already
    # highly optimized" baseline).
    for label in labels:
        assert cols[label]["-> Load Balance"] > 0.95
        assert cols[label]["-> Instructions Scalability"] > 0.97
