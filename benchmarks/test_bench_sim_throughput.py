"""Harness-performance benchmarks: how fast the simulator itself runs.

These time the *wall-clock* cost of simulating reference configurations —
the number every other benchmark's duration is made of.  Useful for
tracking regressions in the engine (fluid rebalancing, event dispatch,
collective matching) as the library evolves.
"""

from repro.core import RunConfig, run_fft_phase
from repro.experiments.common import paper_config


def test_bench_sim_small_original(benchmark):
    cfg = RunConfig(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)
    result = benchmark(run_fft_phase, cfg)
    assert result.phase_time > 0


def test_bench_sim_paper_8x8_original(run_once):
    result = run_once(run_fft_phase, paper_config(8, "original"))
    assert result.phase_time > 0
    # 64 synchronized streams, 8 iterations: the canonical workload.
    assert len(result.cpu.counters.streams) == 64


def test_bench_sim_paper_8x8_perfft(run_once):
    result = run_once(run_fft_phase, paper_config(8, "ompss_perfft"))
    assert result.phase_time > 0
