"""Harness-performance benchmarks: how fast the simulator itself runs.

These time the *wall-clock* cost of simulating reference configurations —
the number every other benchmark's duration is made of.  Useful for
tracking regressions in the engine (fluid rebalancing, event dispatch,
collective matching) as the library evolves.

Hot-path optimization record (measured on the quick 8x8 original workload,
1-core container, best of 5 after cache warmup; byte-identical stable
manifests before/after):

* baseline (pre-optimization): ~31k events/s
* after inlining the ``Simulator.run`` dispatch loop, lazy
  ``FluidResource._rebalance`` bookkeeping and the memoized
  per-core bandwidth-contention waterfill: ~37-43k events/s (~1.35x)

``test_bench_sim_event_throughput`` below re-derives the events/s figure
(``Simulator.n_dispatched`` over wall time) so future regressions show up
as a drop of that number, not just a slower opaque total.
"""

import time

from repro.core import RunConfig, run_fft_phase
from repro.experiments.common import paper_config


def test_bench_sim_small_original(benchmark):
    cfg = RunConfig(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)
    result = benchmark(run_fft_phase, cfg)
    assert result.phase_time > 0


def test_bench_sim_paper_8x8_original(run_once):
    result = run_once(run_fft_phase, paper_config(8, "original"))
    assert result.phase_time > 0
    # 64 synchronized streams, 8 iterations: the canonical workload.
    assert len(result.cpu.counters.streams) == 64


def test_bench_sim_paper_8x8_perfft(run_once):
    result = run_once(run_fft_phase, paper_config(8, "ompss_perfft"))
    assert result.phase_time > 0


def test_bench_sim_event_throughput(run_once):
    """Dispatch-loop throughput: simulator events per wall-clock second."""
    cfg = RunConfig(ecutwfc=30.0, alat=10.0, nbnd=32, ranks=8, taskgroups=8)
    run_fft_phase(cfg)  # warm geometry/plan caches out of the measurement

    def timed():
        t0 = time.perf_counter()
        result = run_fft_phase(cfg)
        wall = time.perf_counter() - t0
        return result, result.sim.n_dispatched / wall

    result, events_per_s = run_once(timed)
    assert result.sim.n_dispatched > 1000
    print(f"\nevent throughput: {events_per_s:,.0f} events/s "
          f"({result.sim.n_dispatched} events)")
