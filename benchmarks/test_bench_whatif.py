"""Benchmark: what-if runtime attribution (the Dimemas-style replays)."""

from repro.experiments import run_ablation_whatif


def test_bench_ablation_whatif(run_once):
    report = run_once(run_ablation_whatif)
    print("\n" + report.text)

    orig = report.data["original"]
    ompss = report.data["ompss_perfft"]

    # On a single node, communication transfer is not the dominant cost for
    # either version at full occupancy.
    assert orig["ideal_network"] > 0.8 * orig["measured"]

    # Memory contention owns a large slice of the original's runtime ...
    contention_orig = 1.0 - orig["infinite_bandwidth"] / orig["measured"]
    assert contention_orig > 0.15
    # ... and the per-FFT schedule has already recovered part of it: the
    # remaining contention share is smaller in absolute terms.
    orig_loss = orig["measured"] - orig["infinite_bandwidth"]
    ompss_loss = ompss["measured"] - ompss["infinite_bandwidth"]
    assert ompss_loss < orig_loss
