"""Backend-plane microbenchmarks: AoS vs SoA layouts, backend comparison.

The backend plane (:mod:`repro.fft.backends`) executes every batched
kernel in one of two memory layouts:

* **AoS** (array-of-structures) — numpy's native interleaved complex,
  ``re,im`` adjacent per element.  This is what pocketfft consumes
  directly, so AoS execution has zero marshalling cost.
* **SoA** (structure-of-arrays) — planar ``(2,) + shape`` float storage,
  ``x[0]`` the real plane and ``x[1]`` the imaginary plane.  This is the
  layout vectorizing compilers prefer for user arithmetic (unit-stride
  loads per plane — the KNL AVX-512 motivation in the paper), but
  pocketfft does not consume it, so the SoA executable pays two
  marshalling passes (planar → interleaved scratch, transform, →
  planar).

These benchmarks put a number on that trade at the reference workload's
block shape, per backend, so ``docs/PERFORMANCE.md`` can carry a measured
AoS-vs-SoA table.  Structural assertions only — absolute speed is
machine-dependent and tracked by the perf_guard ratchets.

Run with::

    pytest benchmarks/test_bench_fft_backends.py --benchmark-only \
        --benchmark-group-by=func
"""

import numpy as np
import pytest

from repro.fft.backends import available_backends, get_backend
from repro.fft.backends.soa import from_soa, to_soa

#: The reference workload's z-stick block (241 sticks of nr3=35) and the
#: per-group plane block of the same workload.
STICK_SHAPE = (241, 35)
PLANE_SHAPE = (35, 24, 24)

_RNG = np.random.default_rng(11)

BACKENDS = available_backends()


def _sticks() -> np.ndarray:
    return _RNG.standard_normal(STICK_SHAPE) + 1j * _RNG.standard_normal(STICK_SHAPE)


@pytest.mark.parametrize("name", BACKENDS)
def test_bench_c2c_1d_aos(benchmark, name):
    """Plan-cached AoS execution: the layout the data plane runs today."""
    exe = get_backend(name).plan("c2c_1d", STICK_SHAPE)
    x = _sticks()
    out = np.empty(STICK_SHAPE, dtype=np.complex128)
    res = benchmark(exe, x, 1, out=out)
    assert res is out


@pytest.mark.parametrize("name", BACKENDS)
def test_bench_c2c_1d_soa(benchmark, name):
    """SoA execution of the same block: transform + 2 marshalling passes.

    The ratio of this to the AoS time is the marshalling overhead a planar
    layout costs when the kernel itself wants interleaved input.
    """
    exe = get_backend(name).plan("c2c_1d", STICK_SHAPE, layout="soa")
    planes = to_soa(_sticks())
    out = np.empty_like(planes)
    scratch = np.empty(STICK_SHAPE, dtype=np.complex128)
    res = benchmark(exe, planes, 1, out=out, scratch=scratch)
    assert res is out
    assert out.shape == (2,) + STICK_SHAPE


@pytest.mark.parametrize("name", BACKENDS)
def test_bench_c2c_2d_aos_vs_soa(benchmark, name):
    """The plane block, SoA: 2D transforms amortize marshalling better
    (more flops per marshalled byte than the short z-sticks)."""
    exe = get_backend(name).plan("c2c_2d", PLANE_SHAPE, layout="soa")
    x = _RNG.standard_normal(PLANE_SHAPE) + 1j * _RNG.standard_normal(PLANE_SHAPE)
    planes = to_soa(x)
    got = benchmark(exe, planes, 1)
    aos = get_backend(name).plan("c2c_2d", PLANE_SHAPE)(x, 1)
    np.testing.assert_allclose(from_soa(got), aos, rtol=1e-12, atol=1e-12)


def test_bench_soa_marshal_roundtrip(benchmark):
    """The bare marshalling cost: interleaved → planar → interleaved.

    This bounds the best case for any SoA combine step — arithmetic on
    planar data must beat AoS by more than this to win overall.
    """
    x = _sticks()

    def cycle():
        return from_soa(to_soa(x))

    back = benchmark(cycle)
    np.testing.assert_array_equal(back, x)


def test_dataplane_workers2_ratchet_requires_multicore():
    """The committed workers-2 number only ratchets on a multicore host.

    ``BENCH_dataplane.json`` records ``bands_per_s_workers2`` (the 2-worker
    kernel pool) next to ``host_cpus`` for context.  On a single-core host
    the pool fan-out is pure IPC overhead, so a committed workers-2 value
    *above* the serial throughput with ``host_cpus == 1`` can only mean the
    baseline was recorded inconsistently — refuse it.
    """
    import json
    import pathlib

    path = pathlib.Path(__file__).parent / "BENCH_dataplane.json"
    doc = json.loads(path.read_text())
    if doc.get("host_cpus", 0) <= 1:
        assert doc["bands_per_s_workers2"] <= doc["bands_per_s"], (
            "workers-2 throughput exceeds serial in a single-core baseline; "
            "re-record BENCH_dataplane.json on the host that ratchets it"
        )


def test_bench_soa_combine_vs_aos_combine(benchmark):
    """A representative combine step (axpy over the block) in both layouts.

    The SoA side does the scale-accumulate on planar float data, which is
    the access pattern the paper's KNL vectorization notes favor; numpy
    reaches the same flops through its complex ufuncs on AoS, so on
    commodity hardware the two are close and the marshalling tax decides.
    """
    x = _sticks()
    y = _sticks()
    planes_x, planes_y = to_soa(x), to_soa(y)
    acc_aos = np.zeros(STICK_SHAPE, dtype=np.complex128)
    acc_soa = np.zeros((2,) + STICK_SHAPE, dtype=np.float64)

    def combine_both():
        # AoS: complex axpy straight through numpy's ufunc machinery.
        np.multiply(x, 0.5, out=acc_aos)
        np.add(acc_aos, y, out=acc_aos)
        # SoA: the same axpy as two unit-stride float plane operations.
        np.multiply(planes_x, 0.5, out=acc_soa)
        np.add(acc_soa, planes_y, out=acc_soa)
        return acc_aos, acc_soa

    aos, soa = benchmark(combine_both)
    np.testing.assert_allclose(from_soa(soa), aos, rtol=1e-12, atol=1e-12)
