"""Benchmark: Figure 6 — original vs OmpSs runtimes and the headline claims."""

from repro.experiments import PAPER, run_fig6


def test_bench_fig6(run_once):
    report = run_once(run_fig6)
    print("\n" + report.text)

    claim = PAPER["fig6"]
    lo, hi = claim["speedup_range"]

    # Who wins: OmpSs at full node occupancy, by roughly the paper's factor.
    assert report.data["speedups"]["8x8"] >= lo - 0.02
    assert report.data["speedups"]["8x8"] <= hi + 0.07

    # Crossover: at low occupancy (no contention to soften) the versions are
    # near-equal; the OmpSs advantage appears as the node fills.
    assert abs(report.data["speedups"]["1x8"]) < 0.05
    assert report.data["speedups"]["8x8"] > report.data["speedups"]["1x8"]

    # Best configurations: original peaks at 8x8, OmpSs tolerates (or
    # exploits) hyper-threading.
    assert report.data["best_original"] == "8x8"
    assert report.data["best_ompss"] in ("8x8", "16x8")

    # Best-vs-best ~10 %.
    assert 0.05 <= report.data["best_vs_best"] <= 0.18

    # The OmpSs version does not *lose* from 2x hyper-threading (the
    # original does); the paper reports a ~3 % gain.
    assert report.data["ht_gain_ompss"] > -0.01
