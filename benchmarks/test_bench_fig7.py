"""Benchmark: Figure 7 — de-synchronization of compute phases at 8x8."""

import pytest

from repro.experiments import PAPER, run_fig7


def test_bench_fig7(run_once):
    report = run_once(run_fig7)
    print("\n" + report.text)

    anchors = PAPER["fig7"]
    orig = report.data["original"]
    ompss = report.data["ompss_perfft"]

    # The main-phase IPC shift: ~0.75 -> ~0.85.
    assert orig["mean_ipc"] == pytest.approx(anchors["main_phase_ipc_original"], abs=0.06)
    assert ompss["mean_ipc"] == pytest.approx(anchors["main_phase_ipc_ompss"], abs=0.06)
    assert ompss["mean_ipc"] > orig["mean_ipc"]

    # "In the OmpSs version the IPC of the phases is much more scattered."
    assert ompss["ipc_std"] > 2.0 * orig["ipc_std"]

    # Synchronized blocks -> asynchronous execution.
    assert orig["synchrony"] > 0.8
    assert ompss["synchrony"] < orig["synchrony"] - 0.15
