"""Microbenchmarks of the from-scratch FFT kernels (the compute substrate).

Not a paper artifact — these measure the library's own ``cft_1z``/``cft_2xy``
throughput on the paper workload's actual shapes (120-point dimensions,
multi-hundred-stick batches) and check correctness against numpy inside the
timed region's setup.  Useful for tracking the substrate's performance over
time; the simulator's *cost model* is calibrated to KNL, not to this host.
"""

import numpy as np
import pytest

from repro.fft import cft_1z, cft_2xy, fft

RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def stick_block():
    # The 8x8 layout's group block: ~319 sticks x 120 z-points.
    data = RNG.standard_normal((319, 120)) + 1j * RNG.standard_normal((319, 120))
    return data


@pytest.fixture(scope="module")
def plane_block():
    # One scatter rank's planes: 15 x 120 x 120.
    data = RNG.standard_normal((15, 120, 120)) + 1j * RNG.standard_normal((15, 120, 120))
    return data


def test_bench_cft_1z(benchmark, stick_block):
    result = benchmark(cft_1z, stick_block, +1)
    np.testing.assert_allclose(
        result, np.fft.ifft(stick_block, axis=-1) * 120, rtol=1e-9, atol=1e-9
    )


def test_bench_cft_2xy(benchmark, plane_block):
    result = benchmark(cft_2xy, plane_block, +1)
    np.testing.assert_allclose(
        result,
        np.fft.ifft2(plane_block, axes=(-2, -1)) * (120 * 120),
        rtol=1e-9,
        atol=1e-9,
    )


def test_bench_fft_pow2_batch(benchmark):
    x = RNG.standard_normal((256, 128)) + 1j * RNG.standard_normal((256, 128))
    result = benchmark(fft, x)
    np.testing.assert_allclose(result, np.fft.fft(x, axis=-1), rtol=1e-9, atol=1e-9)


def test_bench_fft_bluestein_prime(benchmark):
    x = RNG.standard_normal((64, 101)) + 1j * RNG.standard_normal((64, 101))
    result = benchmark(fft, x)
    np.testing.assert_allclose(result, np.fft.fft(x, axis=-1), rtol=1e-8, atol=1e-8)
