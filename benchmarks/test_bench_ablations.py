"""Benchmarks: the ablations DESIGN.md calls out (ntg, grainsize, HT,
scheduler policy, executor comparison)."""

from repro.experiments import (
    run_ablation_grainsize,
    run_ablation_hyperthreading,
    run_ablation_ntg,
    run_ablation_scheduler,
    run_ablation_versions,
)


def test_bench_ablation_ntg(run_once):
    """§II.A: the two extremes of the task-group knob shift the collective
    cost between scatter (ntg=1) and pack/unpack (ntg=P)."""
    report = run_once(run_ablation_ntg)
    print("\n" + report.text)

    split = report.data["comm_split"]
    # ntg=1: no pack at all, all cost in the (all-process) scatter.
    assert split["ntg=1"]["pack_s"] == 0.0
    assert split["ntg=1"]["scatter_s"] > 0.0
    # ntg=P: scatter communicators are singletons (cost ~0), pack carries it.
    assert split["ntg=64"]["pack_s"] > split["ntg=64"]["scatter_s"]
    # Pack share rises monotonically with ntg.
    shares = [
        split[f"ntg={n}"]["pack_s"]
        / max(split[f"ntg={n}"]["pack_s"] + split[f"ntg={n}"]["scatter_s"], 1e-30)
        for n in (1, 2, 4, 8, 16, 32, 64)
    ]
    assert all(a <= b + 1e-9 for a, b in zip(shares, shares[1:]))


def test_bench_ablation_grainsize(run_once):
    """Opt 1 grainsize: too fine pays dispatch overhead; the paper's (10,
    200) choice is near the sweet spot."""
    report = run_once(run_ablation_grainsize)
    print("\n" + report.text)

    rt = report.data["runtime_s"]
    # The paper's choice beats the pathologically fine one.
    assert rt["xy=10,z=200"] < rt["xy=1,z=10"]


def test_bench_ablation_hyperthreading(run_once):
    report = run_once(run_ablation_hyperthreading)
    print("\n" + report.text)

    rt = report.data["runtime_s"]
    # Original: HT does not improve the runtime.
    assert rt["original-2ht"] >= rt["original-1ht"] * 0.995
    # OmpSs: tolerates HT (paper: gains ~3 %).
    assert rt["ompss_perfft-2ht"] <= rt["ompss_perfft-1ht"] * 1.01


def test_bench_ablation_scheduler(run_once):
    report = run_once(run_ablation_scheduler)
    print("\n" + report.text)

    rt = report.data["runtime_s"]
    assert set(rt) == {"fifo", "lifo", "priority", "locality", "wsteal"}
    # All policies complete; FIFO (creation order) is never the worst by a
    # large margin — it keeps cross-rank band windows overlapping.
    assert rt["fifo"] <= 1.2 * min(rt.values())


def test_bench_ablation_versions(run_once):
    report = run_once(run_ablation_versions)
    print("\n" + report.text)

    rt = report.data["runtime_s"]
    # At full-node occupancy (the compute-bound regime the paper targets
    # with Opt 2), the per-FFT version is the fastest executor.
    assert rt["ompss_perfft"] < rt["original"]
    # The non-task pipelined baseline also beats the synchronous original
    # (overlap helps), but not the task versions' dynamic scheduling.
    assert rt["pipelined"] < rt["original"]
    assert rt["ompss_perfft"] <= min(rt.values()) * 1.001
    # Opt 1 also improves on the baseline (overlap), but less than Opt 2
    # in this regime — matching the paper's choice to evaluate Opt 2 on KNL.
    assert rt["ompss_steps"] < rt["original"]
    assert rt["ompss_perfft"] < rt["ompss_steps"]
