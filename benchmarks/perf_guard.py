"""Events/s ratchet guard for the contention engine.

Measures the simulator's event-dispatch throughput on the reference
desynchronized workload (ranks=8, taskgroups=8, ``ompss_perfft`` — the
configuration whose hot path is the vectorized fluid engine + memoized
bandwidth water-filling) and compares it against the committed baseline
``benchmarks/BENCH_contention.json``.

Modes
-----
``check``
    Fail (exit 1) when the best-of-N throughput falls more than
    ``--tolerance`` (default 20%) below the baseline.  CI runs this on
    every push; the generous tolerance plus a best-of-N protocol absorbs
    shared-runner noise while still catching real hot-path regressions.

``update``
    Re-measure and rewrite the baseline *only if faster* (a ratchet:
    the committed number only ever goes up).  Run this after landing an
    engine optimization and commit the result.

Usage::

    PYTHONPATH=src python benchmarks/perf_guard.py check
    PYTHONPATH=src python benchmarks/perf_guard.py update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "BENCH_contention.json"
BASELINE_KIND = "repro.bench_contention"


def reference_config():
    from repro.core.driver import RunConfig

    return RunConfig(ranks=8, taskgroups=8, version="ompss_perfft")


def measure(rounds: int = 5) -> dict:
    """Best-of-``rounds`` event throughput of the reference workload."""
    from repro.core.driver import run_fft_phase

    cfg = reference_config()
    run_fft_phase(cfg)  # warm geometry/plan caches out of the measurement
    best = 0.0
    sim_events = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_fft_phase(cfg)
        wall = time.perf_counter() - t0
        sim_events = result.sim.n_dispatched
        best = max(best, sim_events / wall)
    return {
        "kind": BASELINE_KIND,
        "config": cfg.label(),
        "events_per_s": best,
        "sim_events": sim_events,
        "rounds": rounds,
    }


def load_baseline(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    doc = json.loads(path.read_text())
    if doc.get("kind") != BASELINE_KIND:
        raise SystemExit(f"{path}: not a {BASELINE_KIND} baseline")
    return doc


def cmd_check(path: pathlib.Path, tolerance: float, rounds: int) -> int:
    baseline = load_baseline(path)
    if baseline is None:
        print(f"no baseline at {path}; run 'perf_guard.py update' and commit it")
        return 1
    current = measure(rounds)
    floor = baseline["events_per_s"] * (1.0 - tolerance)
    verdict = "OK" if current["events_per_s"] >= floor else "REGRESSION"
    print(
        f"{verdict}: {current['events_per_s']:,.0f} events/s "
        f"(baseline {baseline['events_per_s']:,.0f}, "
        f"floor {floor:,.0f} at -{tolerance:.0%}, "
        f"best of {rounds} on {current['config']})"
    )
    if verdict != "OK":
        print(
            "event-dispatch throughput regressed beyond tolerance; "
            "profile the fluid-engine hot path (see docs/PERFORMANCE.md) "
            "or, if the slowdown is intended and justified, refresh the "
            "baseline with 'perf_guard.py update --force'."
        )
        return 1
    return 0


def cmd_update(path: pathlib.Path, rounds: int, force: bool) -> int:
    baseline = load_baseline(path)
    current = measure(rounds)
    if baseline is not None and not force:
        if current["events_per_s"] <= baseline["events_per_s"]:
            print(
                f"keeping baseline {baseline['events_per_s']:,.0f} events/s "
                f"(measured {current['events_per_s']:,.0f}; "
                "the ratchet only moves up — use --force to lower it)"
            )
            return 0
    path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {path}: {current['events_per_s']:,.0f} events/s")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("check", "update"))
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--force",
        action="store_true",
        help="update: overwrite even when slower than the stored baseline",
    )
    args = parser.parse_args(argv)
    if args.mode == "check":
        return cmd_check(args.baseline, args.tolerance, args.rounds)
    return cmd_update(args.baseline, args.rounds, args.force)


if __name__ == "__main__":
    sys.exit(main())
