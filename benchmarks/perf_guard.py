"""Throughput ratchet guards for the simulator's optimized hot paths.

Each *target* measures one reference workload and compares it against a
committed baseline file:

``contention``
    Event-dispatch throughput (events/s) of the desynchronized meta-mode
    workload (ranks=8, taskgroups=8, ``ompss_perfft``) — the configuration
    whose hot path is the vectorized fluid engine + memoized bandwidth
    water-filling.  Baseline: ``benchmarks/BENCH_contention.json``.

``dataplane``
    Data-mode band throughput (bands/s) of the 8x8 reference workload
    (ecutwfc 30, alat 10, 32 bands, ``original``) — the configuration whose
    hot path is the zero-allocation data plane: workspace arenas, cached
    flat index maps, batched marshalling, and the direct batched-matmul FFT
    combine.  Baseline: ``benchmarks/BENCH_dataplane.json``, which also
    records the pre-arena throughput the optimization is measured against.

``multinode``
    Data-mode band throughput (bands/s) across the multi-node grid —
    nodes {1, 4} x decomposition {slab, pencil} on the pack-free
    Alltoallw data plane (ranks=4, taskgroups=2, ``original``).  The
    ratcheted headline is the *worst* of the four cells.  Baseline:
    ``benchmarks/BENCH_multinode.json``.

``service``
    Sustained request throughput (requests/s) of the async service front
    end (:mod:`repro.service`) digesting a saturating burst of mixed
    small/medium requests on two workers, plus the p50/p99 end-to-end
    latency of the same burst.  ``requests_per_s`` is floor-checked like
    the other ratchets; ``p99_s`` is *ceiling*-checked (lower is better)
    so a latency regression fails even when throughput holds.  Baseline:
    ``benchmarks/BENCH_service.json``.

``tuning``
    Autotuner quality: the tuned-vs-default win rate of the cost-model-
    guided search (:mod:`repro.tuning`) over a small grid x executor x
    node matrix.  The whole measurement is simulated and seeded, so
    ``win_rate`` is deterministic — any drop means a search or cost-model
    regression, not noise.  The median speedup rides along for triage.
    Baseline: ``benchmarks/BENCH_tuning.json``.

Modes
-----
``check``
    Fail (exit 1) when any selected target's best-of-N throughput falls
    more than ``--tolerance`` (default 20%) below its baseline.  CI runs
    this on every push; the generous tolerance plus a best-of-N protocol
    absorbs shared-runner noise while still catching real hot-path
    regressions.

``update``
    Re-measure and rewrite the baseline *only if faster* (a ratchet: the
    committed number only ever goes up).  Run this after landing an
    optimization and commit the result.

Usage::

    PYTHONPATH=src python benchmarks/perf_guard.py check
    PYTHONPATH=src python benchmarks/perf_guard.py check --target dataplane
    PYTHONPATH=src python benchmarks/perf_guard.py update --target contention
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_HERE = pathlib.Path(__file__).resolve().parent

#: Pre-optimization bands/s of the dataplane reference workload, measured at
#: the commit before the workspace arena landed.  Kept in the baseline file
#: so the speedup the ratchet protects stays visible next to the number.
PRE_ARENA_BANDS_PER_S = 41.94370461713116


def contention_config():
    from repro.core.driver import RunConfig

    return RunConfig(ranks=8, taskgroups=8, version="ompss_perfft")


def dataplane_config():
    from repro.core.driver import RunConfig

    return RunConfig(
        ranks=8,
        taskgroups=8,
        version="original",
        ecutwfc=30.0,
        alat=10.0,
        nbnd=32,
        data_mode=True,
    )


def measure_contention(rounds: int = 5) -> dict:
    """Best-of-``rounds`` event-dispatch throughput (meta mode)."""
    from repro.core.driver import run_fft_phase

    cfg = contention_config()
    run_fft_phase(cfg)  # warm geometry/plan caches out of the measurement
    best = 0.0
    sim_events = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_fft_phase(cfg)
        wall = time.perf_counter() - t0
        sim_events = result.sim.n_dispatched
        best = max(best, sim_events / wall)
    return {
        "kind": "repro.bench_contention",
        "config": cfg.label(),
        "events_per_s": best,
        "sim_events": sim_events,
        "rounds": rounds,
    }


def _bands_per_s(cfg, rounds: int) -> float:
    from repro.core.driver import run_fft_phase

    run_fft_phase(cfg)  # warm geometry/plan caches and the buffer arenas
    best = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_fft_phase(cfg)
        wall = time.perf_counter() - t0
        best = max(best, cfg.n_complex_bands / wall)
    return best


def measure_dataplane(rounds: int = 5) -> dict:
    """Best-of-``rounds`` data-mode band throughput (complex bands/s).

    The ratcheted metric, ``bands_per_s``, is the default configuration
    (``fft_backend="numpy"``, ``kernel_workers=1``).  Alongside it the
    baseline records ``bands_per_s_workers2`` — the same workload fanned
    over the 2-worker kernel process pool — and the host core count, for
    context rather than ratcheting: on a multicore host the pool buys real
    parallelism, while on a single-core runner (CI containers are often
    exactly that) the fan-out is pure IPC overhead and the workers-2 number
    lands *below* the serial one.  Recording ``host_cpus`` next to both
    numbers keeps that distinction honest.
    """
    import dataclasses
    import os

    from repro.fft.backends.pool import close_shared_pools

    cfg = dataplane_config()
    best = _bands_per_s(cfg, rounds)
    cfg2 = dataclasses.replace(cfg, kernel_workers=2)
    best_workers2 = _bands_per_s(cfg2, rounds)
    close_shared_pools()
    return {
        "kind": "repro.bench_dataplane",
        "config": cfg.label(),
        "bands_per_s": best,
        "bands_per_s_workers2": best_workers2,
        "host_cpus": os.cpu_count(),
        "n_complex_bands": cfg.n_complex_bands,
        "pre_arena_bands_per_s": PRE_ARENA_BANDS_PER_S,
        "speedup_vs_pre_arena": best / PRE_ARENA_BANDS_PER_S,
        "rounds": rounds,
    }


def multinode_configs():
    """nodes {1,4} x decomposition {slab,pencil} on the 4x2 data workload."""
    from repro.core.driver import RunConfig

    base = dict(
        ranks=4,
        taskgroups=2,
        version="original",
        ecutwfc=30.0,
        alat=10.0,
        nbnd=32,
        data_mode=True,
    )
    return {
        f"nodes{n}_{decomp}": RunConfig(n_nodes=n, decomposition=decomp, **base)
        for n in (1, 4)
        for decomp in ("slab", "pencil")
    }


def measure_multinode(rounds: int = 5) -> dict:
    """Best-of-``rounds`` band throughput across the multi-node grid.

    The ratcheted headline, ``bands_per_s``, is the *minimum* of the four
    cells (nodes 1 and 4, slab and pencil decompositions, all on the
    pack-free data plane) — the guard only holds when every corner of the
    multi-node data plane stays fast.  Per-cell numbers ride along for
    triage.
    """
    cfgs = multinode_configs()
    per = {key: _bands_per_s(cfg, rounds) for key, cfg in cfgs.items()}
    worst = min(per, key=per.get)
    return {
        "kind": "repro.bench_multinode",
        "config": "4x2 data mode (ecut 30, alat 10, 32 bands), "
        "nodes {1,4} x {slab,pencil}",
        "bands_per_s": per[worst],
        "worst_cell": worst,
        **{f"bands_per_s_{key}": value for key, value in per.items()},
        "rounds": rounds,
    }


#: Service burst: enough requests to saturate two workers without
#: stretching CI, mixed 3:1 small:medium like the loadgen default mix.
SERVICE_BURST = 40


def measure_service(rounds: int = 5) -> dict:
    """Best-of-``rounds`` sustained req/s of a saturating service burst.

    Every request has a distinct seed (distinct digest), so the memo cache
    cannot shortcut the measurement — this is genuine backend capacity.
    The latency percentiles of the best round ride along and are
    ceiling-checked (a queueing regression shows up in p99 first).
    """
    import asyncio

    from repro.service import AsyncService, ServiceConfig, preset_request
    from repro.service.server import latency_percentiles

    requests = [
        preset_request(
            "medium" if i % 4 == 3 else "small",
            seed=3000 + i,
            deadline_s=60.0,
        )
        for i in range(SERVICE_BURST)
    ]
    config = ServiceConfig(workers=2, max_queue_depth=2 * SERVICE_BURST)

    async def burst() -> tuple[float, dict]:
        service = AsyncService(config)
        await service.start()
        t0 = time.perf_counter()
        await asyncio.gather(*[service.submit(r) for r in requests])
        elapsed = time.perf_counter() - t0
        await service.drain()
        return (
            len(requests) / elapsed,
            latency_percentiles(service.core.latencies),
        )

    # One throwaway round warms the process geometry/plan caches.
    asyncio.run(burst())
    best = 0.0
    latency: dict = {}
    for _ in range(rounds):
        rps, lat = asyncio.run(burst())
        if rps > best:
            best = rps
            latency = lat
    return {
        "kind": "repro.bench_service",
        "config": f"burst of {SERVICE_BURST} (3:1 small:medium), 2 workers",
        "requests_per_s": best,
        "p50_s": latency["p50_s"],
        "p99_s": latency["p99_s"],
        "rounds": rounds,
    }


#: Matrix the tuning guard searches: small enough for CI, wide enough to
#: exercise both decompositions, a task executor, and a multi-node cell.
TUNING_CELLS = (
    ("2x2 original", 2, "original", 2, 1),
    ("2 ompss_perfft", 2, "ompss_perfft", 2, 1),
    ("4x2 original 2n", 4, "original", 2, 2),
)


def measure_tuning(rounds: int = 5) -> dict:
    """Tuned-vs-default win rate over the reference matrix (deterministic).

    ``rounds`` is accepted for interface parity but ignored: the search and
    every candidate evaluation are simulated with fixed seeds, so repeated
    rounds return byte-identical results.
    """
    from repro.experiments import run_tuning

    report = run_tuning(
        ecutwfc=12.0,
        alat=5.0,
        nbnd=8,
        cells=TUNING_CELLS,
        top_k=4,
        survivors=2,
    )
    return {
        "kind": "repro.bench_tuning",
        "config": f"{report.data['n_cells']} cells (ecut 12, alat 5, 8 bands), "
        "cold search per cell",
        "win_rate": report.data["win_rate"],
        "median_speedup": report.data["median_speedup"],
        "max_speedup": report.data["max_speedup"],
        "changed_cells": report.data["changed_cells"],
        "rounds": 1,
    }


#: target name -> (baseline path, baseline kind, throughput key, measure fn,
#:                 regression hint)
TARGETS = {
    "contention": (
        _HERE / "BENCH_contention.json",
        "repro.bench_contention",
        "events_per_s",
        measure_contention,
        "profile the fluid-engine hot path (see docs/PERFORMANCE.md)",
    ),
    "dataplane": (
        _HERE / "BENCH_dataplane.json",
        "repro.bench_dataplane",
        "bands_per_s",
        measure_dataplane,
        "profile the data-plane hot path — arena reuse, index-map caching, "
        "and the batched FFT combine (see docs/PERFORMANCE.md)",
    ),
    "multinode": (
        _HERE / "BENCH_multinode.json",
        "repro.bench_multinode",
        "bands_per_s",
        measure_multinode,
        "profile the multi-node data plane — the Alltoallw block plans, the "
        "pencil transpose paths, and the inter-node network accounting "
        "(see docs/PERFORMANCE.md)",
    ),
    "service": (
        _HERE / "BENCH_service.json",
        "repro.bench_service",
        "requests_per_s",
        measure_service,
        "profile the service front end — admission/queue bookkeeping, "
        "worker fan-out, and the per-request driver overhead "
        "(see docs/RESILIENCE.md)",
    ),
    "tuning": (
        _HERE / "BENCH_tuning.json",
        "repro.bench_tuning",
        "win_rate",
        measure_tuning,
        "inspect the autotuner — candidate enumeration, cost-model ranking, "
        "and the incumbent's bye into the final rung (see docs/TUNING.md)",
    ),
}

#: Metrics where *lower* is better, checked against a ceiling of
#: baseline * (1 + tolerance) alongside the target's throughput floor.
CEILING_METRICS: dict[str, tuple[str, ...]] = {
    "service": ("p99_s",),
}


def load_baseline(path: pathlib.Path, kind: str) -> dict | None:
    if not path.exists():
        return None
    doc = json.loads(path.read_text())
    if doc.get("kind") != kind:
        raise SystemExit(f"{path}: not a {kind} baseline")
    return doc


def baseline_provenance(path: pathlib.Path, baseline: dict) -> str:
    """Where the committed baseline came from: file mtime plus the commit
    recorded at update time (older baselines predate the commit field)."""
    parts = []
    try:
        mtime = path.stat().st_mtime
        parts.append(
            "mtime " + time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(mtime))
        )
    except OSError:
        parts.append("mtime unknown")
    commit = baseline.get("commit")
    parts.append(f"commit {commit}" if commit else "commit not recorded")
    if baseline.get("recorded_at"):
        parts.append(f"recorded {baseline['recorded_at']}")
    return f"{path} ({', '.join(parts)})"


def _current_commit() -> str | None:
    """Best-effort git HEAD of the working tree (None outside a checkout)."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_HERE,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def check_target(name: str, path: pathlib.Path, tolerance: float, rounds: int) -> int:
    default_path, kind, metric, measure, hint = TARGETS[name]
    path = path or default_path
    baseline = load_baseline(path, kind)
    if baseline is None:
        print(f"[{name}] no baseline at {path}; run 'perf_guard.py update' and commit it")
        return 1
    current = measure(rounds)
    floor = baseline[metric] * (1.0 - tolerance)
    verdict = "OK" if current[metric] >= floor else "REGRESSION"
    print(
        f"[{name}] {verdict}: {current[metric]:,.1f} {metric} "
        f"(baseline {baseline[metric]:,.1f}, "
        f"floor {floor:,.1f} at -{tolerance:.0%}, "
        f"best of {rounds} on {current['config']})"
    )
    for ceiling_metric in CEILING_METRICS.get(name, ()):
        base_value = baseline.get(ceiling_metric)
        if base_value is None:
            continue
        ceiling = base_value * (1.0 + tolerance)
        if current[ceiling_metric] > ceiling:
            verdict = "REGRESSION"
            print(
                f"[{name}] REGRESSION: {current[ceiling_metric]:.6f} "
                f"{ceiling_metric} above ceiling {ceiling:.6f} "
                f"(baseline {base_value:.6f} at +{tolerance:.0%})"
            )
        else:
            print(
                f"[{name}] OK: {current[ceiling_metric]:.6f} {ceiling_metric} "
                f"(ceiling {ceiling:.6f})"
            )
    if verdict != "OK":
        print(f"[{name}] baseline provenance: {baseline_provenance(path, baseline)}")
        print(
            f"[{name}] throughput regressed beyond tolerance; {hint} "
            "or, if the slowdown is intended and justified, refresh the "
            "baseline with 'perf_guard.py update --force'."
        )
        return 1
    return 0


def update_target(name: str, path: pathlib.Path, rounds: int, force: bool) -> int:
    default_path, kind, metric, measure, _hint = TARGETS[name]
    path = path or default_path
    baseline = load_baseline(path, kind)
    current = measure(rounds)
    if baseline is not None and not force:
        if current[metric] <= baseline[metric]:
            print(
                f"[{name}] keeping baseline {baseline[metric]:,.1f} {metric} "
                f"(measured {current[metric]:,.1f}; "
                "the ratchet only moves up — use --force to lower it)"
            )
            return 0
    commit = _current_commit()
    if commit is not None:
        current["commit"] = commit
    current["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"[{name}] wrote {path}: {current[metric]:,.1f} {metric}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("check", "update"))
    parser.add_argument(
        "--target",
        choices=("all", *TARGETS),
        default="all",
        help="which ratchet to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="override the baseline path (single-target runs only)",
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--force",
        action="store_true",
        help="update: overwrite even when slower than the stored baseline",
    )
    args = parser.parse_args(argv)
    names = list(TARGETS) if args.target == "all" else [args.target]
    if args.baseline is not None and len(names) != 1:
        parser.error("--baseline requires a single --target")
    status = 0
    for name in names:
        if args.mode == "check":
            status |= check_target(name, args.baseline, args.tolerance, args.rounds)
        else:
            status |= update_target(name, args.baseline, args.rounds, args.force)
    return status


if __name__ == "__main__":
    sys.exit(main())
