"""Benchmark-suite gate: the numerical certification matrix must pass."""

from repro.experiments import run_validation


def test_bench_validation(run_once):
    report = run_once(run_validation)
    print("\n" + report.text)

    assert report.data["passed"]
    for label, entry in report.data["cases"].items():
        assert entry["error"] < 1e-11, label
        assert entry["observable"] < 1e-8, label
