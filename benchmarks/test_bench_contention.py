"""Allocator and rebalance microbenchmarks for the contention engine.

Times the three layers the vectorized engine is built from, bottom up:

* the water-filling kernels (reference fixpoint vs vectorized sort+cumsum),
* one ``allocate_batch`` call on a 64-stream statics array — memo hit and
  memo miss separately (the miss path is what dominates desynchronized
  workloads, where the phase composition drifts continuously),
* one full reference run, reporting the engine counters that the run
  manifest exports under ``engine.cpu``.

Absolute numbers are tracked by the committed ratchet baseline
``BENCH_contention.json`` (see ``perf_guard.py``); these benchmarks only
assert structural facts that hold at any machine speed.
"""

import numpy as np

from repro.core.driver import RunConfig, run_fft_phase
from repro.machine.contention import (
    BandwidthContentionAllocator,
    waterfill,
    waterfill_vec,
)
from repro.machine.phases import PhaseProfile
from repro.machine.topology import HwThread
from repro.simkit.fluid import FluidTask
from repro.simkit.simulator import Simulator

_PROFILES = [
    PhaseProfile("fft_z", 1.2, 0.9),
    PhaseProfile("fft_xy", 0.8, 2.1),
    PhaseProfile("pack", 1.9, 0.2),
    PhaseProfile("fft_scatter", 1.1, 1.4),
]


def _statics_array(alloc, n_streams=64, n_profiles=4):
    """Prepare one 64-stream active set (one task per core, as in 8x8)."""
    sim = Simulator()
    statics = []
    for k in range(n_streams):
        task = FluidTask(
            sim,
            1.0,
            meta={
                "profile": _PROFILES[k % n_profiles],
                "thread": HwThread(core=k, slot=0, index=4 * k, node=0),
                "speed": 1.0 + 0.01 * (k % 7),
            },
        )
        static = alloc.prepare(task)
        alloc.notify_attach(static)
        statics.append(static)
    return np.asarray(statics, dtype=float)


def test_bench_waterfill_reference(benchmark):
    demands = [1e9 + 1e7 * k for k in range(64)]
    grants = benchmark(waterfill, demands, 30e9)
    assert sum(grants) <= 30e9 * (1 + 1e-9)


def test_bench_waterfill_vectorized(benchmark):
    demands = np.array([1e9 + 1e7 * k for k in range(64)])
    grants = benchmark(waterfill_vec, demands, 30e9)
    assert float(grants.sum()) <= 30e9 * (1 + 1e-9)


def test_bench_allocate_batch_memo_hit(benchmark):
    alloc = BandwidthContentionAllocator(
        frequency_hz=1.4e9, bandwidth_bytes_per_s=90e9
    )
    arr = _statics_array(alloc)
    alloc.allocate_batch(arr)  # prime the composition memo
    rates = benchmark(alloc.allocate_batch, arr)
    assert rates.shape == (64,)
    info = alloc.cache_info()
    assert info["alloc_cache_misses"] == 1
    assert info["alloc_cache_hits"] >= 1


def test_bench_allocate_batch_memo_miss(benchmark):
    alloc = BandwidthContentionAllocator(
        frequency_hz=1.4e9, bandwidth_bytes_per_s=90e9
    )
    arr = _statics_array(alloc)

    def miss():
        alloc._dense_cache.clear()
        alloc._cache.clear()
        return alloc.allocate_batch(arr)

    rates = benchmark(miss)
    assert rates.shape == (64,)
    assert alloc.cache_info()["alloc_cache_hits"] == 0


def test_bench_rebalance_engine(run_once):
    """Full reference run; prints the counters the manifest exports."""
    cfg = RunConfig(ranks=8, taskgroups=8, version="ompss_perfft")
    run_fft_phase(cfg)  # warm caches out of the measurement
    result = run_once(run_fft_phase, cfg)
    stats = result.cpu.engine_stats()
    print(f"\nengine counters: {stats}")
    # The desynchronized workload must exercise all three layers: coalesced
    # same-timestamp updates, the composition memo, and timer reuse.
    assert stats["n_rebalances"] > 0
    assert stats["n_coalesced"] > 0
    assert stats["alloc_cache_hits"] > 0
    assert stats["alloc_cache_misses"] > 0
    assert stats["n_timer_skips"] > 0
    # Coalescing is what keeps rebalances near the task-finish count (the
    # irreducible floor of an exact fluid engine) instead of 2-3x above it.
    n_computes = sum(
        len(result.cpu.counters.phases(s)) and
        sum(c.occurrences for c in result.cpu.counters.phases(s).values())
        for s in result.cpu.counters.streams
    )
    assert stats["n_rebalances"] <= 1.25 * n_computes
