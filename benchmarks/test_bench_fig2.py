"""Benchmark: Figure 2 — FFT-phase runtime vs. MPI ranks, original version."""

from repro.experiments import run_fig2


def test_bench_fig2(run_once):
    report = run_once(run_fig2)
    print("\n" + report.text)

    runtimes = report.data["runtime_s"]
    # Paper shape 1: the phase scales (poorly) up to the full node ...
    assert runtimes["1x8"] > runtimes["2x8"] > runtimes["4x8"] > runtimes["8x8"]
    # ... but far from linearly ("does not scale very well").
    assert runtimes["1x8"] / runtimes["8x8"] < 8.0
    # Paper shape 2: hyper-threading does not help — runtime increases again.
    assert runtimes["16x8"] >= runtimes["8x8"]
    assert runtimes["32x8"] > runtimes["8x8"]
    assert report.data["best"] == "8x8"
