"""Benchmark: the multi-node scale sweep (the paper's §IV claim)."""

from repro.experiments import run_multinode


def test_bench_multinode(run_once):
    report = run_once(run_multinode)
    print("\n" + report.text)

    speedups = report.data["speedups"]
    inter = report.data["inter_bytes"]
    nodes = sorted(inter)

    # Fabric traffic grows with node count (more of the scatter crosses it).
    assert inter[nodes[0]] == 0.0  # single node: no fabric
    grown = [inter[n] for n in nodes[1:]]
    assert all(a < b for a, b in zip(grown, grown[1:])) or len(grown) <= 1

    # §IV direction: the overlap-based Opt 1's advantage over the original
    # grows as communication becomes dominant.
    opt1 = [speedups["opt1 per-step"][n] for n in nodes]
    assert opt1[-1] > opt1[0] + 0.05

    # The crossover: Opt 2 (de-sync) wins the single-node compute-bound
    # regime (the paper's measured result); Opt 1 (overlap) wins the
    # largest communication-dominated scale.
    first, last = nodes[0], nodes[-1]
    rt = report.data["runtime_s"]
    assert rt["opt2 per-fft"][first] <= rt["opt1 per-step"][first]
    assert rt["opt1 per-step"][last] < rt["opt2 per-fft"][last]

    # The §VI combination (per-FFT + MPI task switching) beats plain Opt 2
    # once the fabric matters.
    assert rt["combined (ts)"][last] < rt["opt2 per-fft"][last]
