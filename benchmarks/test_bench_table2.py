"""Benchmark: Table II — POP factors of the OmpSs per-FFT version."""

import pytest

from repro.experiments import PAPER, run_table2


def test_bench_table2(run_once):
    report = run_once(run_table2)
    print("\n" + report.text)

    cols = report.data["columns"]
    paper = PAPER["table2"]
    labels = PAPER["config_labels"]

    # Through 4x8 the factor columns track the paper closely.
    for i, label in enumerate(labels[:3]):
        measured = cols[label]["Global Efficiency"] * 100
        assert measured == pytest.approx(paper["Global Efficiency"][i], abs=6.0), label
        measured = cols[label]["-> IPC Scalability"] * 100
        assert measured == pytest.approx(paper["-> IPC Scalability"][i], abs=6.0), label

    # Key qualitative improvements over Table I (same base: each table is
    # normalized to its own 1x8): computation scalability holds up better
    # in the OmpSs version at the full node.
    from repro.experiments import run_table1  # noqa: PLC0415 - comparison only

    # Use the paper's Table I values as the baseline for the comparison to
    # avoid re-running the original sweep inside this benchmark.
    t1_ipc_8x8 = PAPER["table1"]["-> IPC Scalability"][3] / 100
    assert cols["8x8"]["-> IPC Scalability"] > t1_ipc_8x8

    # Known divergence (documented in EXPERIMENTS.md): the simulated task
    # version hides transfer almost completely at scale, unlike the real
    # Nanos++/MPI stack — so parallel efficiency at 8x8/16x8 is optimistic.
    assert cols["16x8"]["   -> Transfer"] > 0.9
