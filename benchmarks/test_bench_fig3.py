"""Benchmark: Figure 3 — trace structure of the 8x8 original run."""

import pytest

from repro.experiments import PAPER, run_fig3


def test_bench_fig3(run_once):
    report = run_once(run_fig3)
    print("\n" + report.text)

    anchors = PAPER["fig3"]
    summary = report.data["phase_summary"]

    # Phase IPC anchors of the timeline (read off Fig. 3).
    assert summary["prepare_psis"]["ipc"] == pytest.approx(anchors["prepare_psis_ipc"], abs=0.02)
    assert summary["fft_z"]["ipc"] == pytest.approx(anchors["fft_z_ipc"], abs=0.08)
    assert report.data["central_phase_ipc"] == pytest.approx(anchors["central_phase_ipc"], abs=0.08)

    # "the 64 FFTs are executed with 8 FFTs at the same time, i.e. 8
    # repeating phases can be seen".
    assert report.data["repeating_phases"] == PAPER["workload"]["repeating_phases"]

    # Two-layer communicator structure: R pack comms of T neighboring ranks,
    # T scatter comms of R alternating ranks (1, 9, 17, ...).
    pack = report.data["pack_comms"]
    scatter = report.data["scatter_comms"]
    assert len(pack) == anchors["pack_comms_of_8x8"]
    assert len(scatter) == anchors["scatter_comms_of_8x8"]
    assert pack["pack0"]["streams"] == list(range(8))
    assert scatter["scatter1"]["streams"] == [1, 9, 17, 25, 33, 41, 49, 57]
