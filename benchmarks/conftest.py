"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper at the full
workload (ecutwfc 80 Ry, alat 20 Bohr, 128 bands, ntg 8) on the simulated
KNL node, prints the measured rows next to the paper's published values,
and asserts the paper's *qualitative* claims (who wins, by roughly what
factor, where the crossover lies).  Absolute times are simulated-KNL
milliseconds, not wall time; the pytest-benchmark timing wraps the whole
experiment (simulation throughput), which is useful for tracking the
harness itself.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
