"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no network and no `wheel` package, so the
PEP-517 editable route (which builds a wheel) is unavailable; this shim lets
`setup.py develop` handle editable installs. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
