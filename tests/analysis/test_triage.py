"""Regression triage on synthetic manifest pairs with planted blame."""

import pytest

from repro.analysis.triage import triage_pair


def manifest(label="cfg", phase_time=1.0, phases=None, mpi=None,
             pop=None, engine=None):
    doc = {
        "kind": "repro.run_manifest",
        "config": {"label": label},
        "timing": {"phase_time_s": phase_time},
        "phases": phases or {},
        "mpi": mpi or {},
        "average_ipc": 1.0,
    }
    if pop is not None:
        doc["analysis"] = {"pop": pop}
    if engine is not None:
        doc["engine"] = engine
    return doc


BASE_PHASES = {
    "fft_xy": {"time_s": 0.6, "ipc": 1.0},
    "pack": {"time_s": 0.2, "ipc": 0.8},
}
BASE_POP = {
    "parallel_efficiency": 0.8,
    "load_balance": 0.95,
    "serialization_efficiency": 0.95,
    "transfer_efficiency": 0.89,
}


class TestTriagePair:
    def test_neutral_on_identical_runs(self):
        a = manifest(phases=BASE_PHASES, pop=BASE_POP)
        report = triage_pair(a, a)
        assert report.verdict == "neutral"
        assert report.runtime_relative == pytest.approx(0.0)
        # only the runtime headline survives; nothing moved
        assert [f.kind for f in report.findings] == ["runtime"]
        assert report.dominant is None

    def test_regression_names_dominant_phase_and_factor(self):
        a = manifest(phases=BASE_PHASES, pop=BASE_POP)
        slow_phases = {
            "fft_xy": {"time_s": 0.9, "ipc": 0.7},  # planted regression
            "pack": {"time_s": 0.2, "ipc": 0.8},
        }
        slow_pop = dict(BASE_POP, parallel_efficiency=0.6, load_balance=0.7)
        b = manifest(phase_time=1.3, phases=slow_phases, pop=slow_pop)
        report = triage_pair(a, b)
        assert report.verdict == "regression"
        assert report.dominant_phase == "fft_xy"
        # load_balance dropped most (0.95 -> 0.70)
        assert report.dominant_factor == "load_balance"
        assert any(f.kind == "runtime" for f in report.findings)

    def test_improvement_verdict(self):
        a = manifest(phases=BASE_PHASES)
        b = manifest(phase_time=0.8, phases=BASE_PHASES)
        assert triage_pair(a, b).verdict == "improvement"

    def test_threshold_widens_neutral_band(self):
        a = manifest(phase_time=1.0, phases=BASE_PHASES)
        b = manifest(phase_time=1.05, phases=BASE_PHASES)
        assert triage_pair(a, b, threshold=0.02).verdict == "regression"
        assert triage_pair(a, b, threshold=0.10).verdict == "neutral"

    def test_negative_threshold_rejected(self):
        a = manifest()
        with pytest.raises(ValueError):
            triage_pair(a, a, threshold=-0.1)

    def test_mpi_layer_finding(self):
        a = manifest(mpi={"scatter": {"time_s": 0.1}})
        b = manifest(phase_time=1.2, mpi={"scatter": {"time_s": 0.3}})
        report = triage_pair(a, b)
        (finding,) = [f for f in report.findings if f.kind == "mpi_layer"]
        assert finding.subject == "scatter"
        assert finding.delta == pytest.approx(0.2)

    def test_counter_findings_never_headline(self):
        engine_a = {"cpu": {"rebalances": 10.0, "events": 100.0}}
        engine_b = {"cpu": {"rebalances": 40.0, "events": 100.0}}
        a = manifest(phases=BASE_PHASES, engine=engine_a)
        b = manifest(
            phase_time=1.3,
            phases={"fft_xy": {"time_s": 0.9, "ipc": 0.7},
                    "pack": {"time_s": 0.2, "ipc": 0.8}},
            engine=engine_b,
        )
        report = triage_pair(a, b)
        counters = [f for f in report.findings if f.kind == "counter"]
        assert counters and counters[0].subject == "engine.cpu.rebalances"
        # a counter explains but never outranks the moved phase
        assert report.dominant.kind == "phase"

    def test_legacy_pop_section_fallback(self):
        a = manifest()
        a["pop"] = dict(BASE_POP)
        b = manifest(phase_time=1.3)
        b["pop"] = dict(BASE_POP, transfer_efficiency=0.5)
        report = triage_pair(a, b)
        assert report.dominant_factor == "transfer_efficiency"

    def test_to_dict_roundtrips_infinities(self):
        a = manifest(phases={"new_phase": {"time_s": 0.0, "ipc": 0.0}})
        b = manifest(phase_time=1.2,
                     phases={"new_phase": {"time_s": 0.2, "ipc": 1.0}})
        doc = triage_pair(a, b).to_dict()
        (finding,) = [f for f in doc["findings"] if f["kind"] == "phase"]
        assert finding["relative"] is None  # inf serialized as null
        assert doc["verdict"] == "regression"
        assert doc["dominant_phase"] == "new_phase"
