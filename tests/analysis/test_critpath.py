"""Critical-path extraction on graphs and timelines with known answers."""

import pytest

from repro.analysis.critpath import (
    KIND_COMPUTE,
    KIND_IDLE,
    KIND_MPI_TRANSFER,
    KIND_MPI_WAIT,
    critical_path_from_trace,
    graph_critical_path,
    slack_histogram,
)
from repro.machine.cpu import ComputeRecord
from repro.mpisim.world import MpiRecord
from repro.telemetry.trace import Trace


class TestGraphCpm:
    def test_chain(self):
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 2.0), "c": ("c", 3.0)},
            [("a", "b"), ("b", "c")],
        )
        assert g.length_s == pytest.approx(6.0)
        assert [n.name for n in g.chain] == ["a", "b", "c"]
        assert all(n.slack == pytest.approx(0.0) for n in g.nodes)

    def test_diamond(self):
        # a(1) -> {b(2), c(5)} -> d(1): the long arm c is critical, b has
        # slack 3 (it may finish any time before c does).
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 2.0), "c": ("c", 5.0), "d": ("d", 1.0)},
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        assert g.length_s == pytest.approx(7.0)
        assert [n.name for n in g.chain] == ["a", "c", "d"]
        slack = {n.name: n.slack for n in g.nodes}
        assert slack["b"] == pytest.approx(3.0)
        assert slack["a"] == slack["c"] == slack["d"] == pytest.approx(0.0)

    def test_fan_out(self):
        tasks = {"a": ("a", 1.0)}
        edges = []
        for i in range(1, 5):
            tasks[f"b{i}"] = ("b", float(i))
            edges.append(("a", f"b{i}"))
        g = graph_critical_path(tasks, edges)
        assert g.length_s == pytest.approx(5.0)  # a(1) + the longest leaf b4(4)
        assert [n.key for n in g.chain] == ["a", "b4"]
        assert g.by_name == {"a": 1.0, "b": 4.0}

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            graph_critical_path(
                {"a": ("a", 1.0), "b": ("b", 1.0)},
                [("a", "b"), ("b", "a")],
            )

    def test_unknown_edge_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            graph_critical_path({"a": ("a", 1.0)}, [("a", "ghost")])

    def test_top_critical_orders_by_duration(self):
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 5.0), "c": ("c", 2.0)},
            [("a", "b"), ("b", "c")],
        )
        assert [n.name for n in g.top_critical(2)] == ["b", "c"]

    def test_slack_histogram_all_critical(self):
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 1.0)}, [("a", "b")]
        )
        hist = slack_histogram(g.nodes)
        assert hist == {"bins": [0.0], "counts": [2], "max_slack_s": 0.0}

    def test_slack_histogram_bins(self):
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 2.0), "c": ("c", 5.0), "d": ("d", 1.0)},
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        hist = slack_histogram(g.nodes, bins=4)
        assert hist["max_slack_s"] == pytest.approx(3.0)
        assert sum(hist["counts"]) == 4
        assert hist["counts"][-1] == 1  # only b sits in the top slack bin

    def test_to_dict_shape(self):
        g = graph_critical_path(
            {"a": ("a", 1.0), "b": ("b", 2.0)}, [("a", "b")]
        )
        doc = g.to_dict()
        assert doc["length_s"] == pytest.approx(3.0)
        assert doc["n_tasks"] == 2 and doc["n_edges"] == 1
        assert doc["chain_len"] == 2
        assert set(doc["slack_histogram"]) == {"bins", "counts", "max_slack_s"}


def compute(stream, phase, start, end):
    return ComputeRecord(
        stream=stream, thread=None, phase=phase,
        instructions=1.0, start=start, end=end,
    )


def mpi(stream, begin, end, sync, comm="pack0"):
    return MpiRecord(
        stream=stream, call="alltoall", comm_id=1, comm_name=comm,
        t_begin=begin, t_end=end, bytes_sent=1.0, sync_time=sync,
    )


class TestTimelineWalk:
    def test_handoff_through_mpi(self):
        # Stream "a" computes [0,4] and [6,10]; stream "b" runs an MPI call
        # [4,6] with 1 s of sync.  Expected tiling of [0,10]:
        # compute 4 + wait 1 + transfer 1 + compute 4.
        trace = Trace()
        trace.compute += [compute("a", "p1", 0.0, 4.0), compute("a", "p2", 6.0, 10.0)]
        trace.mpi.append(mpi("b", 4.0, 6.0, sync=1.0))
        path = critical_path_from_trace(trace, makespan_s=10.0)
        assert path.length_s == pytest.approx(10.0)
        assert path.by_kind == pytest.approx(
            {KIND_COMPUTE: 8.0, KIND_MPI_WAIT: 1.0, KIND_MPI_TRANSFER: 1.0}
        )
        kinds = [s.kind for s in path.segments]
        assert kinds == [KIND_COMPUTE, KIND_MPI_WAIT, KIND_MPI_TRANSFER, KIND_COMPUTE]

    def test_gap_becomes_idle(self):
        # Nothing runs in [3,5]: the walk attributes the gap as dependency
        # idle on the stream that resumes at 5.
        trace = Trace()
        trace.compute += [compute("a", "p1", 0.0, 3.0), compute("b", "p2", 5.0, 8.0)]
        path = critical_path_from_trace(trace, makespan_s=8.0)
        assert path.length_s == pytest.approx(8.0)
        assert path.by_kind == pytest.approx({KIND_COMPUTE: 6.0, KIND_IDLE: 2.0})
        idle = [s for s in path.segments if s.kind == KIND_IDLE]
        assert idle[0].stream == "'b'"  # the blocked stream, not the blocker

    def test_length_equals_makespan_with_tail(self):
        trace = Trace()
        trace.compute.append(compute("a", "p", 0.0, 3.0))
        path = critical_path_from_trace(trace, makespan_s=4.0)
        assert path.length_s == pytest.approx(4.0)
        assert path.by_kind[KIND_IDLE] == pytest.approx(1.0)

    def test_empty_trace(self):
        path = critical_path_from_trace(Trace())
        assert path.segments == [] and path.length_s == 0.0

    def test_top_labels(self):
        trace = Trace()
        trace.compute += [compute("a", "big", 0.0, 7.0), compute("a", "small", 7.0, 8.0)]
        path = critical_path_from_trace(trace)
        assert path.top_labels(1) == [("big", pytest.approx(7.0))]

    def test_to_dict_merges_adjacent_segments(self):
        trace = Trace()
        trace.compute += [compute("a", "p", 0.0, 2.0), compute("a", "p", 2.0, 5.0)]
        doc = critical_path_from_trace(trace).to_dict()
        assert doc["n_segments"] == 1
        assert doc["segments"][0]["duration_s"] == pytest.approx(5.0)
        assert doc["length_s"] == pytest.approx(doc["makespan_s"])
