"""POP efficiency decomposition on hand-computable synthetic timelines."""

import pytest

from repro.analysis.pop import (
    PopDecomposition,
    StreamTimeline,
    decompose,
    timelines_from_trace,
)
from repro.machine.cpu import ComputeRecord
from repro.mpisim.world import MpiRecord
from repro.telemetry.trace import Trace


def two_rank_timelines():
    """Rank A computes 8 s; rank B computes 4 s and waits 2 s in MPI."""
    a = StreamTimeline(stream="A", compute_by_phase={"fft": 8.0})
    b = StreamTimeline(
        stream="B",
        compute_by_phase={"fft": 4.0},
        mpi_sync_by_layer={"pack": 2.0},
        mpi_transfer_by_layer={"pack": 1.0},
    )
    return [a, b]


class TestDecompose:
    def test_two_rank_estimate_split(self):
        # T = 10: max C = 8, mean C = 6 -> LB 0.75, comm eff 0.8.
        # Estimated ideal runtime = max_s(C + S) = max(8, 6) = 8
        # -> transfer 8/10 = 0.8, serialization 8/8 = 1.0.
        pop = decompose(two_rank_timelines(), makespan_s=10.0)
        assert pop.load_balance == pytest.approx(0.75)
        assert pop.communication_efficiency == pytest.approx(0.8)
        assert pop.parallel_efficiency == pytest.approx(0.6)
        assert pop.transfer_efficiency == pytest.approx(0.8)
        assert pop.serialization_efficiency == pytest.approx(1.0)
        assert pop.split_source == "estimate"
        assert pop.ideal_runtime_s == pytest.approx(8.0)

    def test_multiplicative_identity(self):
        pop = decompose(two_rank_timelines(), makespan_s=10.0)
        product = (
            pop.load_balance
            * pop.serialization_efficiency
            * pop.transfer_efficiency
        )
        assert product == pytest.approx(pop.parallel_efficiency, rel=1e-12)
        # parallel efficiency == mean C / T by definition
        assert pop.parallel_efficiency == pytest.approx(6.0 / 10.0, rel=1e-12)

    def test_replay_split(self):
        # A measured ideal-network runtime pins the transfer share exactly.
        pop = decompose(two_rank_timelines(), makespan_s=10.0, ideal_time_s=9.0)
        assert pop.split_source == "replay"
        assert pop.transfer_efficiency == pytest.approx(0.9)
        assert pop.serialization_efficiency == pytest.approx(8.0 / 9.0)

    def test_neutral_split_without_mpi(self):
        a = StreamTimeline(stream="A", compute_by_phase={"fft": 8.0})
        b = StreamTimeline(stream="B", compute_by_phase={"fft": 4.0})
        pop = decompose([a, b], makespan_s=10.0)
        assert pop.split_source == "neutral"
        assert pop.transfer_efficiency == 1.0
        assert pop.serialization_efficiency == pytest.approx(0.8)
        assert pop.parallel_efficiency == pytest.approx(0.6)

    def test_per_phase_load_balance(self):
        a = StreamTimeline(stream="A", compute_by_phase={"fft": 8.0, "pack": 1.0})
        b = StreamTimeline(stream="B", compute_by_phase={"fft": 4.0, "pack": 1.0})
        pop = decompose([a, b], makespan_s=10.0)
        by_name = {p.phase: p for p in pop.phases}
        assert by_name["fft"].load_balance == pytest.approx(0.75)
        assert by_name["pack"].load_balance == pytest.approx(1.0)
        assert by_name["fft"].time_total_s == pytest.approx(12.0)
        assert by_name["fft"].n_streams == 2

    def test_comm_layer_split(self):
        pop = decompose(two_rank_timelines(), makespan_s=10.0)
        layers = {c.layer: c for c in pop.comm_layers}
        assert layers["pack"].sync_s == pytest.approx(2.0)
        assert layers["pack"].transfer_s == pytest.approx(1.0)
        assert layers["pack"].sync_fraction == pytest.approx(2.0 / 3.0)

    def test_empty_timelines_rejected(self):
        with pytest.raises(ValueError):
            decompose([], makespan_s=1.0)

    def test_nonpositive_makespan_rejected(self):
        with pytest.raises(ValueError):
            decompose(two_rank_timelines(), makespan_s=0.0)

    def test_roundtrip_through_dict(self):
        pop = decompose(two_rank_timelines(), makespan_s=10.0)
        doc = pop.to_dict()
        back = PopDecomposition.from_dict(doc)
        assert back.parallel_efficiency == pop.parallel_efficiency
        assert back.split_source == pop.split_source
        assert [p.phase for p in back.phases] == [p.phase for p in pop.phases]
        assert [c.layer for c in back.comm_layers] == ["pack"]


class TestTimelinesFromTrace:
    def test_aggregation_by_phase_and_layer(self):
        trace = Trace()
        trace.compute.append(
            ComputeRecord(stream=0, thread=None, phase="fft",
                          instructions=1e6, start=0.0, end=2.0)
        )
        trace.compute.append(
            ComputeRecord(stream=0, thread=None, phase="fft",
                          instructions=1e6, start=3.0, end=4.0)
        )
        trace.mpi.append(
            MpiRecord(stream=0, call="alltoall", comm_id=1, comm_name="pack3",
                      t_begin=2.0, t_end=3.0, bytes_sent=100.0, sync_time=0.25)
        )
        (tl,) = timelines_from_trace(trace)
        assert tl.compute_by_phase == {"fft": 3.0}
        # pack3 folds into the "pack" layer; sync/transfer split preserved.
        assert tl.mpi_sync_by_layer == {"pack": 0.25}
        assert tl.mpi_transfer_by_layer == {"pack": 0.75}
        assert tl.compute_time == pytest.approx(3.0)
