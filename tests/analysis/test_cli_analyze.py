"""The ``analyze`` CLI: single-run, A/B and sweep modes, all formats."""

import json

import pytest

from repro.cli import main

RUN = ["run", "--ranks", "2", "--taskgroups", "2", "--quick"]


@pytest.fixture(scope="module")
def run_manifest(tmp_path_factory):
    path = tmp_path_factory.mktemp("analyze") / "run.json"
    assert main(RUN + ["--manifest", str(path), "--stable-manifest"]) == 0
    return path


@pytest.fixture(scope="module")
def slow_manifest(tmp_path_factory, run_manifest):
    """A hand-perturbed candidate: fft_xy 1.5x slower, runtime 1.3x."""
    doc = json.loads(run_manifest.read_text())
    doc["timing"]["phase_time_s"] *= 1.3
    doc["phases"]["fft_xy"]["time_s"] *= 1.5
    pop = doc.get("analysis", {}).get("pop")
    if pop:
        pop["parallel_efficiency"] *= 0.7
        pop["load_balance"] *= 0.9
    path = tmp_path_factory.mktemp("analyze-slow") / "slow.json"
    path.write_text(json.dumps(doc))
    return path


class TestAnalyzeSingle:
    def test_text_report(self, run_manifest, capsys):
        assert main(["analyze", str(run_manifest)]) == 0
        out = capsys.readouterr().out
        assert "POP efficiency factors" in out
        assert "Critical path" in out
        assert "parallel efficiency" in out

    def test_json_report_is_schema_shaped(self, run_manifest, capsys):
        assert main(["analyze", str(run_manifest), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["analysis"]["schema_version"] == 1
        pop = doc["analysis"]["pop"]
        product = (
            pop["load_balance"]
            * pop["serialization_efficiency"]
            * pop["transfer_efficiency"]
        )
        assert product == pytest.approx(pop["parallel_efficiency"], rel=1e-9)
        crit = doc["analysis"]["critical_path"]
        assert crit["length_s"] == pytest.approx(
            doc["phase_time_s"], rel=1e-9
        )

    def test_markdown_to_file(self, run_manifest, tmp_path, capsys):
        out_path = tmp_path / "analysis.md"
        code = main(
            ["analyze", str(run_manifest), "--format", "markdown",
             "--out", str(out_path)]
        )
        assert code == 0
        assert "analysis written" in capsys.readouterr().out
        text = out_path.read_text()
        assert text.startswith("# Analysis:")
        assert "## POP efficiency factors" in text

    def test_manifest_without_analysis_exits_2(self, run_manifest, tmp_path, capsys):
        doc = json.loads(run_manifest.read_text())
        del doc["analysis"]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        assert main(["analyze", str(bare)]) == 2
        assert "analysis" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "/nonexistent/run.json"])


class TestAnalyzePair:
    def test_triage_names_planted_regression(self, run_manifest, slow_manifest, capsys):
        assert main(["analyze", str(run_manifest), str(slow_manifest)]) == 0
        out = capsys.readouterr().out
        assert "verdict: REGRESSION" in out
        assert "dominant phase:  fft_xy" in out

    def test_check_gates_on_regression(self, run_manifest, slow_manifest, capsys):
        code = main(
            ["analyze", str(run_manifest), str(slow_manifest), "--check"]
        )
        assert code == 1
        # self-comparison is neutral, passes
        capsys.readouterr()
        assert main(["analyze", str(run_manifest), str(run_manifest), "--check"]) == 0

    def test_json_pair_report(self, run_manifest, slow_manifest, capsys):
        assert main(
            ["analyze", str(run_manifest), str(slow_manifest), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "regression"
        assert doc["dominant_phase"] == "fft_xy"
        assert any(f["kind"] == "efficiency_factor" for f in doc["findings"])

    def test_three_manifests_exit_2(self, run_manifest, capsys):
        code = main(["analyze", str(run_manifest)] * 3)
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_check_requires_pair(self, run_manifest, capsys):
        assert main(["analyze", str(run_manifest), "--check"]) == 2
        assert "--check" in capsys.readouterr().err


class TestAnalyzeSweep:
    @pytest.fixture(scope="class")
    def sweep_manifest(self, tmp_path_factory, run_manifest):
        summary = json.loads(run_manifest.read_text())
        doc = {
            "kind": "repro.sweep_manifest",
            "schema_version": 1,
            "created": "(stable)",
            "points": {
                "ranks=2": {
                    "digest": "sha256:0",
                    "phase_time_s": summary["timing"]["phase_time_s"],
                    "failed": False,
                    "summary": summary,
                },
            },
        }
        path = tmp_path_factory.mktemp("sweep") / "sweep.json"
        path.write_text(json.dumps(doc))
        return path

    def test_sweep_text_series(self, sweep_manifest, capsys):
        assert main(["analyze", str(sweep_manifest)]) == 0
        out = capsys.readouterr().out
        assert "par eff" in out
        assert "ranks=2" in out

    def test_sweep_markdown_series(self, sweep_manifest, capsys):
        assert main(["analyze", str(sweep_manifest), "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Sweep efficiency series")


class TestPerfTriageTail:
    def test_diff_prints_triage_verdict(self, run_manifest, slow_manifest, capsys):
        assert main(["perf", "diff", str(run_manifest), str(slow_manifest)]) == 0
        out = capsys.readouterr().out
        assert "triage: REGRESSION" in out
        assert "dominant mover" in out

    def test_check_writes_triage_json(self, run_manifest, slow_manifest,
                                      tmp_path, capsys):
        triage_path = tmp_path / "triage.json"
        code = main(
            ["perf", "check", "--baseline", str(run_manifest),
             str(slow_manifest), "--triage", str(triage_path)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "verdict: REGRESSION" in err
        doc = json.loads(triage_path.read_text())
        assert doc["verdict"] == "regression"
        assert doc["dominant_phase"] == "fft_xy"
