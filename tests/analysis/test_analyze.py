"""Acceptance: the analysis pipeline end-to-end on live runs.

The ISSUE gate: on a telemetry-enabled run the reported critical path
length equals the simulated makespan within float tolerance, the POP
factors multiply out exactly, and the manifest carries a schema-valid
``analysis`` section.
"""

import warnings

import pytest

from repro.analysis import (
    FACTOR_KEYS,
    analyze_manifest,
    analyze_run,
    analyze_session,
    analyze_sweep,
    efficiency_summary,
)
from repro.core import RunConfig, run_fft_phase
from repro.telemetry.manifest import build_manifest, validate_manifest

QUICK = dict(ecutwfc=30.0, alat=10.0, nbnd=32)
RTOL = 1e-9


def _run(version="original", **overrides):
    config = RunConfig(
        ranks=4, taskgroups=4, version=version, telemetry=True, **QUICK, **overrides
    )
    return run_fft_phase(config)


@pytest.fixture(scope="module")
def original():
    return _run()


@pytest.fixture(scope="module")
def steps():
    return _run("ompss_steps")


class TestAnalyzeRun:
    def test_critical_path_length_equals_makespan(self, original):
        analysis = analyze_run(original)
        path = analysis.critical_path
        assert path is not None
        assert path.length_s == pytest.approx(original.phase_time, rel=RTOL)
        assert path.makespan_s == pytest.approx(original.phase_time, rel=RTOL)

    def test_pop_identity_on_live_run(self, original):
        pop = analyze_run(original).pop
        assert pop is not None
        product = (
            pop.load_balance
            * pop.serialization_efficiency
            * pop.transfer_efficiency
        )
        assert product == pytest.approx(pop.parallel_efficiency, rel=1e-12)
        assert 0.0 < pop.parallel_efficiency <= 1.0 + 1e-12
        assert pop.split_source == "estimate"  # MPI records, no replay
        assert {p.phase for p in pop.phases} >= {"fft_z", "fft_xy"}

    def test_driver_stashes_analysis_on_session(self, original):
        tel = original.telemetry
        assert tel.analysis is not None
        assert analyze_run(original) is tel.analysis
        gauges = tel.metrics.snapshot()
        assert "analysis.parallel_efficiency" in gauges
        assert "analysis.critical_path_seconds" in gauges

    def test_task_graph_on_ompss_steps(self, steps):
        graph = analyze_run(steps).task_graph
        assert graph is not None
        assert graph.n_edges > 0
        assert graph.length_s > 0
        assert graph.chain  # a non-trivial critical chain exists
        # per-step tasks expose low-cardinality kinds, not instance names
        assert all("(" not in name for name in graph.by_name)

    def test_counters_fallback_without_telemetry(self):
        config = RunConfig(ranks=2, taskgroups=2, telemetry=False, **QUICK)
        result = run_fft_phase(config)
        analysis = analyze_run(result)
        assert analysis.critical_path is None and analysis.task_graph is None
        pop = analysis.pop
        assert pop is not None
        assert pop.split_source == "neutral"
        assert 0.0 < pop.parallel_efficiency <= 1.0 + 1e-12

    def test_ideal_override_recomputes(self, original):
        fresh = analyze_run(original, ideal_time_s=original.phase_time * 0.9)
        assert fresh is not original.telemetry.analysis
        assert fresh.pop.split_source == "replay"
        assert fresh.pop.transfer_efficiency == pytest.approx(0.9)


class TestUnclosedSpans:
    def test_warning_and_count_on_open_span(self, original):
        tel = original.telemetry
        handle = tel.spans.begin("test", "straggler", "test", original.phase_time)
        try:
            with pytest.warns(RuntimeWarning, match="still open"):
                analysis = analyze_session(
                    tel, original.phase_time, counters=original.cpu.counters
                )
            assert analysis.unclosed_spans == 1
        finally:
            tel.spans.end(handle, original.phase_time)

    def test_clean_session_has_no_warning(self, original):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            analysis = analyze_session(
                original.telemetry,
                original.phase_time,
                counters=original.cpu.counters,
            )
        assert analysis.unclosed_spans == 0


class TestManifestIntegration:
    def test_manifest_analysis_section_is_schema_valid(self, original):
        manifest = build_manifest(original, created="2026-01-01T00:00:00")
        assert validate_manifest(manifest) == []
        section = manifest["analysis"]
        assert section["schema_version"] == 1
        assert section["unclosed_spans"] == 0
        assert section["pop"]["phases"]
        assert section["critical_path"]["length_s"] == pytest.approx(
            original.phase_time, rel=RTOL
        )

    def test_analyze_manifest_extracts_context(self, original):
        manifest = build_manifest(original, created="2026-01-01T00:00:00")
        info = analyze_manifest(manifest)
        assert info["label"] == original.config.label()
        assert info["phase_time_s"] == pytest.approx(original.phase_time)
        assert info["analysis"]["pop"]["parallel_efficiency"] > 0

    def test_analyze_manifest_rejects_pre_analysis_manifest(self, original):
        manifest = build_manifest(original, created="2026-01-01T00:00:00")
        del manifest["analysis"]
        with pytest.raises(ValueError, match="analysis"):
            analyze_manifest(manifest)

    def test_untraced_manifest_has_no_analysis_section(self):
        config = RunConfig(ranks=2, taskgroups=2, telemetry=False, **QUICK)
        manifest = build_manifest(
            run_fft_phase(config), created="2026-01-01T00:00:00"
        )
        assert "analysis" not in manifest
        assert validate_manifest(manifest) == []


class TestSweepAnalysis:
    def test_sweep_rows_carry_factors(self, original):
        manifest = build_manifest(original, created="(stable)")
        sweep = {
            "kind": "repro.sweep_manifest",
            "points": {
                "ranks=4": {
                    "phase_time_s": original.phase_time,
                    "failed": False,
                    "summary": manifest,
                },
                "bare": {"phase_time_s": 1.0, "failed": False, "summary": {}},
            },
        }
        rows = analyze_sweep(sweep)
        assert [r["point"] for r in rows] == ["ranks=4", "bare"]
        assert rows[0]["parallel_efficiency"] > 0
        assert all(rows[1][k] is None for k in FACTOR_KEYS)

    def test_efficiency_summary_selects_headline_keys(self):
        pop = {k: 0.5 for k in FACTOR_KEYS}
        pop["makespan_s"] = 1.0
        assert set(efficiency_summary(pop)) == set(FACTOR_KEYS)
