"""Properties of the pencil (Pr x Pc) grid geometry.

The exchange plans downstream assume three invariants proven here: the
rank grid factorization is exact and squarest-possible, the axis spans
partition every index range (coverage without overlap), and the brick
shapes tile the global grid exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.pencil import PencilGrid, factor_grid, partition_spans


class TestFactorGrid:
    @settings(max_examples=50, deadline=None)
    @given(R=st.integers(min_value=1, max_value=4096))
    def test_exact_squarest_factorization(self, R):
        pr, pc = factor_grid(R)
        assert pr * pc == R
        assert pr <= pc
        # Pr is the largest divisor <= sqrt(R): no better split exists.
        for d in range(pr + 1, int(np.sqrt(R)) + 1):
            assert R % d != 0

    def test_known_cases(self):
        assert factor_grid(1) == (1, 1)
        assert factor_grid(6) == (2, 3)
        assert factor_grid(7) == (1, 7)   # prime: degenerates to slab-like
        assert factor_grid(64) == (8, 8)

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            factor_grid(0)


class TestPartitionSpans:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=60),
        parts=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_cover_disjoint_ordered(self, n, parts, seed):
        """Spans tile ``range(n)``: complete coverage, no overlap, in order."""
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 5, size=n).astype(float)
        spans = partition_spans(weights, parts)
        assert len(spans) == parts
        cursor = 0
        for lo, hi in spans:
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == n

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=60),
        parts=st.integers(min_value=1, max_value=5),
    )
    def test_uniform_weights_balance(self, n, parts):
        """Unit weights: spans differ by at most one index."""
        spans = partition_spans(np.ones(n), parts)
        lengths = [hi - lo for lo, hi in spans]
        assert max(lengths) - min(lengths) <= 1

    @settings(max_examples=50, deadline=None)
    @given(
        parts=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2000),
    )
    def test_refined_spans_bound_weight_imbalance(self, parts, seed):
        """With enough moderately-varied items per part, the refinement
        pass keeps the heaviest/lightest row-weight ratio bounded — the
        balance property the pencil row decomposition leans on."""
        rng = np.random.default_rng(seed)
        n = 8 * parts + int(rng.integers(0, 8))
        weights = rng.integers(1, 5, size=n).astype(float)
        spans = partition_spans(weights, parts)
        part_weights = [weights[lo:hi].sum() for lo, hi in spans]
        assert min(part_weights) > 0
        assert max(part_weights) / min(part_weights) <= 3.0

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        parts=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2000),
    )
    def test_refinement_never_worse_than_quota_bound(self, n, parts, seed):
        """The greedy edge refinement only accepts strict improvements, so
        the quota split's guarantee max_part < total/parts + max_w holds
        for the refined spans too."""
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 6, size=n).astype(float)
        spans = partition_spans(weights, parts)
        if weights.sum() == 0:
            return
        heaviest = max(weights[lo:hi].sum() for lo, hi in spans)
        assert heaviest < weights.sum() / parts + weights.max() + 1e-9

    def test_refinement_fixes_greedy_overshoot(self):
        """A heavy head item drags the quota split's first boundary too far
        right; the refinement pass walks it back to a perfect 7/7/7."""
        weights = np.array([4.0, 1.0, 1.0, 1.0] * 3)
        spans = partition_spans(weights, 3)
        assert [weights[lo:hi].sum() for lo, hi in spans] == [7.0, 7.0, 7.0]

    def test_zero_total_weight_falls_back_to_index_split(self):
        spans = partition_spans(np.zeros(7), 3)
        assert spans == [(0, 3), (3, 5), (5, 7)]

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError, match="parts"):
            partition_spans(np.ones(4), 0)


class TestPencilGrid:
    @settings(max_examples=30, deadline=None)
    @given(
        R=st.integers(min_value=1, max_value=12),
        nr=st.tuples(
            st.integers(min_value=4, max_value=20),
            st.integers(min_value=4, max_value=20),
            st.integers(min_value=4, max_value=20),
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_bricks_tile_the_global_grid(self, R, nr, seed):
        """Summed over the rank grid, y- and x-brick volumes equal the full
        grid volume — every (ix, iy, iz) owned exactly once per stage."""
        rng = np.random.default_rng(seed)
        grid = PencilGrid(nr, R, x_weights=rng.integers(0, 4, size=nr[0]))
        n_total = nr[0] * nr[1] * nr[2]
        y_total = sum(int(np.prod(grid.y_brick_shape(r))) for r in range(R))
        x_total = sum(int(np.prod(grid.x_brick_shape(r))) for r in range(R))
        assert y_total == n_total
        assert x_total == n_total

    def test_rank_coords_roundtrip(self):
        grid = PencilGrid((8, 8, 8), 6)
        for r in range(6):
            i, j = grid.coords(r)
            assert grid.rank_of(i, j) == r
        assert grid.coords(5) == (1, 2)  # 2x3 grid, row-major

    def test_row_and_col_groups_partition_ranks(self):
        grid = PencilGrid((8, 8, 8), 12)
        rows = [set(grid.row_ranks(i)) for i in range(grid.Pr)]
        cols = [set(grid.col_ranks(j)) for j in range(grid.Pc)]
        assert set().union(*rows) == set(range(12))
        assert set().union(*cols) == set(range(12))
        for a in range(grid.Pr):
            for b in range(a + 1, grid.Pr):
                assert not rows[a] & rows[b]
        # Each row meets each column in exactly one rank.
        for row, col in [(rows[i], cols[j]) for i in range(grid.Pr) for j in range(grid.Pc)]:
            assert len(row & col) == 1

    def test_weighted_x_spans_follow_stick_mass(self):
        """All weight in the lower half of x: row 0's span stays there."""
        w = np.zeros(16)
        w[:8] = 1.0
        grid = PencilGrid((16, 8, 8), 4, x_weights=w)
        (lo0, hi0) = grid.x_span(0)
        assert hi0 <= 8 or w[lo0:hi0].sum() >= w.sum() / 2 - 1

    def test_bad_inputs_rejected(self):
        grid = PencilGrid((8, 8, 8), 4)
        with pytest.raises(ValueError, match="outside"):
            grid.coords(4)
        with pytest.raises(ValueError, match="outside"):
            grid.rank_of(2, 0)
        with pytest.raises(ValueError, match="x_weights"):
            PencilGrid((8, 8, 8), 4, x_weights=np.ones(5))
