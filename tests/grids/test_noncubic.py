"""Non-cubic cells through the whole stack (lattice -> pipeline -> solver).

The driver's RunConfig is cubic (as the paper's workload is), but every
layer below it supports general lattices; these tests exercise tetragonal
and sheared cells end to end against the dense reference.
"""

import numpy as np
import pytest

from repro.core.validate import dense_reference, max_relative_error
from repro.core.wave import make_potential
from repro.fft import allowed_fft_order
from repro.grids import Cell, DistributedLayout, FftDescriptor
from repro.qe import Hamiltonian, dense_hamiltonian_matrix, solve_bands

TETRAGONAL = np.diag([1.0, 1.0, 1.6])
SHEARED = np.array([[1.0, 0.3, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.2]])


def run_distributed(desc, coeffs, potential, R, T):
    """Drive the marshalling layers by hand (no simulator: numerics only)."""
    from repro.core.wave import (
        distribute_coefficients,
        expand_group_block,
        extract_group_coefficients,
        potential_slab,
    )
    from repro.core.scatter import (
        assemble_group_block_from_planes,
        assemble_planes,
        scatter_bw_parts,
        scatter_fw_parts,
    )
    from repro.fft import cft_1z, cft_2xy

    layout = DistributedLayout(desc, R, T)
    per_proc = distribute_coefficients(layout, coeffs)
    out = np.zeros_like(coeffs)
    for band_group in range(coeffs.shape[0] // T):
        bands = [band_group * T + t for t in range(T)]
        # Pack semantics: process (r, t) assembles band bands[t] from the
        # *same* band's shares of every pack-group member.
        for t in range(T):
            groups = {}
            for r in range(R):
                members = [
                    per_proc[layout.proc_of(r, tp)][bands[t]] for tp in range(T)
                ]
                block = expand_group_block(layout, r, members)
                groups[r] = cft_1z(block, +1)
            fw = {r: scatter_fw_parts(layout, r, groups[r]) for r in range(R)}
            planes = {
                r: assemble_planes(layout, r, [fw[src][r] for src in range(R)])
                for r in range(R)
            }
            for r in range(R):
                p = cft_2xy(planes[r], +1)
                p *= potential_slab(layout, r, potential)
                planes[r] = cft_2xy(p, -1)
            bw = {r: scatter_bw_parts(layout, r, planes[r]) for r in range(R)}
            for r in range(R):
                block = assemble_group_block_from_planes(
                    layout, r, [bw[src][r] for src in range(R)]
                )
                block = cft_1z(block, -1)
                for tp, coeff in enumerate(extract_group_coefficients(layout, r, block)):
                    g_idx, _sl, _iz = layout.local_g_table(layout.proc_of(r, tp))
                    out[bands[t], g_idx] = coeff
    return out


class TestNonCubicCells:
    @pytest.mark.parametrize("at", [TETRAGONAL, SHEARED], ids=["tetragonal", "sheared"])
    def test_descriptor_geometry(self, at):
        desc = FftDescriptor(Cell(alat=5.0, at=at), ecutwfc=12.0)
        assert desc.ngw > 0
        for n in desc.grid_shape:
            assert allowed_fft_order(n)
        # Anisotropic cells get anisotropic grids.
        if at is TETRAGONAL:
            assert desc.nr3 > desc.nr1

    @pytest.mark.parametrize("at", [TETRAGONAL, SHEARED], ids=["tetragonal", "sheared"])
    def test_sphere_respects_metric(self, at):
        cell = Cell(alat=5.0, at=at)
        desc = FftDescriptor(cell, ecutwfc=12.0)
        np.testing.assert_allclose(
            desc.sphere.g2, cell.g_norm2(desc.sphere.millers), rtol=1e-12
        )
        assert np.all(desc.sphere.g2 <= desc.gkcut + 1e-9)

    @pytest.mark.parametrize("at", [TETRAGONAL, SHEARED], ids=["tetragonal", "sheared"])
    @pytest.mark.parametrize("grid", [(2, 2), (4, 1), (1, 4)])
    def test_distributed_kernel_matches_dense(self, at, grid):
        R, T = grid
        desc = FftDescriptor(Cell(alat=5.0, at=at), ecutwfc=12.0)
        rng = np.random.default_rng(3)
        coeffs = rng.standard_normal((T * 2, desc.ngw)) + 1j * rng.standard_normal(
            (T * 2, desc.ngw)
        )
        potential = make_potential(desc.grid_shape, seed=5)
        got = run_distributed(desc, coeffs, potential, R, T)
        want = dense_reference(desc, coeffs, potential)
        assert max_relative_error(got, want) < 1e-12

    def test_band_solver_on_sheared_cell(self):
        desc = FftDescriptor(Cell(alat=5.0, at=SHEARED), ecutwfc=10.0)
        potential = make_potential(desc.grid_shape, seed=7)
        ham = Hamiltonian(desc, potential)
        exact = np.linalg.eigvalsh(dense_hamiltonian_matrix(desc, potential))[:3]
        res = solve_bands(ham, 3, tol=1e-11, max_iterations=100)
        np.testing.assert_allclose(res.eigenvalues, exact, atol=1e-7)
