"""Tests for the cell, G-sphere generation, and grid sizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import allowed_fft_order
from repro.grids import Cell, build_sphere, grid_dimensions


class TestCell:
    def test_cubic_defaults(self):
        cell = Cell(alat=20.0)
        assert cell.tpiba == pytest.approx(2 * np.pi / 20.0)
        assert cell.volume == pytest.approx(8000.0)
        np.testing.assert_allclose(cell.bg, np.eye(3))

    def test_invalid_alat(self):
        with pytest.raises(ValueError):
            Cell(alat=0.0)

    def test_singular_lattice_rejected(self):
        with pytest.raises(ValueError):
            Cell(alat=1.0, at=np.zeros((3, 3)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Cell(alat=1.0, at=np.eye(2))

    def test_reciprocal_duality(self):
        at = np.array([[1.0, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.2, 2.0]])
        cell = Cell(alat=5.0, at=at)
        np.testing.assert_allclose(cell.bg.T @ cell.at, np.eye(3), atol=1e-12)

    def test_g_norm2_cubic(self):
        cell = Cell(alat=10.0)
        np.testing.assert_allclose(
            cell.g_norm2(np.array([[1, 2, 2], [0, 0, 0]])), [9.0, 0.0]
        )

    def test_gcut_from_ecut(self):
        cell = Cell(alat=20.0)
        assert cell.gcut_from_ecut(80.0) == pytest.approx(80.0 / cell.tpiba2)
        with pytest.raises(ValueError):
            cell.gcut_from_ecut(-1.0)


class TestSphere:
    def test_small_sphere_exact(self):
        """gcut=1.001 on a unit cubic cell: origin + 6 unit vectors."""
        cell = Cell(alat=2 * np.pi)  # tpiba = 1
        sphere = build_sphere(cell, 1.001)
        assert sphere.ngm == 7
        assert tuple(sphere.millers[0]) == (0, 0, 0)

    def test_sphere_is_inversion_symmetric(self):
        cell = Cell(alat=8.0)
        sphere = build_sphere(cell, cell.gcut_from_ecut(20.0))
        mset = {tuple(m) for m in sphere.millers}
        assert all((-i, -j, -k) in mset for (i, j, k) in mset)

    def test_sorted_by_norm(self):
        cell = Cell(alat=8.0)
        sphere = build_sphere(cell, cell.gcut_from_ecut(30.0))
        assert np.all(np.diff(sphere.g2) >= -1e-9)

    def test_count_approximates_sphere_volume(self):
        """ngm ~ (4/3) pi r^3 for a cubic lattice."""
        cell = Cell(alat=2 * np.pi)
        r2 = 12.0**2
        sphere = build_sphere(cell, r2)
        expected = 4.0 / 3.0 * np.pi * 12.0**3
        assert sphere.ngm == pytest.approx(expected, rel=0.05)

    def test_bad_gcut(self):
        with pytest.raises(ValueError):
            build_sphere(Cell(alat=1.0), 0.0)

    def test_grid_indices_wrap_negative_millers(self):
        cell = Cell(alat=2 * np.pi)
        sphere = build_sphere(cell, 1.001)
        dims = (4, 4, 4)
        idx = sphere.grid_indices(dims)
        assert idx.min() >= 0
        assert idx.max() < 4
        m = {tuple(mi) for mi in sphere.millers}
        assert (-1, 0, 0) in m
        # -1 wraps to 3
        wrapped = {tuple(i) for i in idx}
        assert (3, 0, 0) in wrapped

    def test_grid_too_small_raises(self):
        cell = Cell(alat=2 * np.pi)
        sphere = build_sphere(cell, 16.001)  # extends to |m|=4
        with pytest.raises(ValueError, match="too small"):
            sphere.grid_indices((4, 4, 4))

    @settings(max_examples=20, deadline=None)
    @given(ecut=st.floats(min_value=5.0, max_value=60.0), alat=st.floats(min_value=4.0, max_value=15.0))
    def test_all_members_inside_cutoff(self, ecut, alat):
        cell = Cell(alat=alat)
        gcut = cell.gcut_from_ecut(ecut)
        sphere = build_sphere(cell, gcut)
        assert np.all(sphere.g2 <= gcut + 1e-9)
        # And the nearest outside shell is indeed excluded: max norm <= gcut.
        assert sphere.ngm >= 1


class TestGridDimensions:
    def test_paper_workload_grid(self):
        """ecutwfc=80, alat=20, dual 4 -> 120^3 (good order above 2*57+1)."""
        cell = Cell(alat=20.0)
        desc_gcut = cell.gcut_from_ecut(4 * 80.0)
        dims = grid_dimensions(cell, desc_gcut)
        assert dims == (120, 120, 120)

    def test_dims_are_good_orders(self):
        cell = Cell(alat=7.3)
        for n in grid_dimensions(cell, cell.gcut_from_ecut(45.0)):
            assert allowed_fft_order(n)

    def test_grid_holds_sphere(self):
        cell = Cell(alat=9.0)
        gcut = cell.gcut_from_ecut(25.0)
        dims = grid_dimensions(cell, gcut)
        sphere = build_sphere(cell, gcut)
        sphere.grid_indices(dims)  # must not raise

    def test_bad_gcut(self):
        with pytest.raises(ValueError):
            grid_dimensions(Cell(alat=1.0), -2.0)
