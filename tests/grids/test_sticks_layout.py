"""Tests for stick maps, distribution balance, and the R x T layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids import Cell, DistributedLayout, FftDescriptor, distribute_sticks
from repro.grids.sticks import StickMap


@pytest.fixture(scope="module")
def desc():
    # Small but non-trivial workload: grid ~ 27^3, a few hundred sticks.
    return FftDescriptor(Cell(alat=6.0), ecutwfc=30.0)


class TestStickMap:
    def test_total_g_matches_sphere(self, desc):
        assert desc.sticks.total_g == desc.ngw

    def test_every_g_is_on_its_stick(self, desc):
        xy = desc.grid_idx[:, :2]
        for g in range(0, desc.ngw, max(desc.ngw // 50, 1)):
            stick = desc.sticks.stick_of_g[g]
            np.testing.assert_array_equal(desc.sticks.coords[stick], xy[g])

    def test_counts_sum_per_stick(self, desc):
        recount = np.bincount(desc.sticks.stick_of_g, minlength=desc.sticks.nsticks)
        np.testing.assert_array_equal(recount, desc.sticks.counts)

    def test_stick_count_approximates_circle(self, desc):
        """Sticks fill a disc of radius sqrt(gkcut)*alat/2pi-ish in (i,j)."""
        radius = np.sqrt(desc.gkcut)
        expected = np.pi * radius**2
        assert desc.sticks.nsticks == pytest.approx(expected, rel=0.15)


class TestDistribution:
    def test_all_sticks_assigned(self, desc):
        owners = distribute_sticks(desc.sticks.counts, 7)
        assert owners.min() >= 0 and owners.max() < 7
        assert len(owners) == desc.sticks.nsticks

    def test_balance_quality(self, desc):
        """Greedy LPT gets per-proc G loads within ~10% of the mean."""
        for nproc in (2, 4, 8):
            owners = distribute_sticks(desc.sticks.counts, nproc)
            loads = np.array(
                [desc.sticks.counts[owners == p].sum() for p in range(nproc)]
            )
            assert loads.min() > 0
            assert loads.max() / loads.mean() < 1.1

    def test_single_proc_owns_everything(self, desc):
        owners = distribute_sticks(desc.sticks.counts, 1)
        assert np.all(owners == 0)

    def test_deterministic(self, desc):
        a = distribute_sticks(desc.sticks.counts, 5)
        b = distribute_sticks(desc.sticks.counts, 5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_nproc(self):
        with pytest.raises(ValueError):
            distribute_sticks(np.array([1, 2]), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=60),
        nproc=st.integers(min_value=1, max_value=8),
    )
    def test_lpt_never_exceeds_heaviest_plus_mean(self, counts, nproc):
        """Classic LPT bound: max load <= mean + max item."""
        counts = np.array(counts)
        owners = distribute_sticks(counts, nproc)
        loads = np.array([counts[owners == p].sum() for p in range(nproc)])
        assert loads.max() <= counts.sum() / nproc + counts.max() + 1e-9


class TestLayout:
    def test_process_grid_mapping(self, desc):
        lay = DistributedLayout(desc, n_scatter=4, n_groups=2)
        assert lay.P == 8
        assert lay.proc_of(3, 1) == 7
        assert lay.rt_of(7) == (3, 1)
        with pytest.raises(ValueError):
            lay.proc_of(4, 0)
        with pytest.raises(ValueError):
            lay.rt_of(8)

    def test_paper_communicator_structure(self, desc):
        """R pack groups of T consecutive ranks; T scatter groups of R strided ranks."""
        lay = DistributedLayout(desc, n_scatter=8, n_groups=8)
        assert lay.pack_group(0) == list(range(8))
        assert lay.pack_group(1) == list(range(8, 16))
        assert lay.scatter_group(1) == [1, 9, 17, 25, 33, 41, 49, 57]

    def test_sticks_partition_processes(self, desc):
        lay = DistributedLayout(desc, n_scatter=3, n_groups=2)
        seen = np.concatenate([lay.sticks_of(p) for p in range(lay.P)])
        assert len(seen) == desc.sticks.nsticks
        assert len(np.unique(seen)) == desc.sticks.nsticks

    def test_ngw_partition(self, desc):
        lay = DistributedLayout(desc, n_scatter=4, n_groups=2)
        assert sum(lay.ngw_of(p) for p in range(lay.P)) == desc.ngw

    def test_group_sticks_concatenate_members(self, desc):
        lay = DistributedLayout(desc, n_scatter=2, n_groups=3)
        for r in range(2):
            group = lay.group_sticks(r)
            offsets = lay.group_offsets(r)
            for t in range(3):
                seg = group[offsets[t]: offsets[t + 1]]
                np.testing.assert_array_equal(seg, lay.sticks_of(lay.proc_of(r, t)))

    def test_planes_partition_grid(self, desc):
        lay = DistributedLayout(desc, n_scatter=5, n_groups=1)
        assert sum(lay.npp(r) for r in range(5)) == desc.nr3
        assert lay.z_offset(0) == 0
        # Contiguous, ordered slabs.
        for r in range(4):
            assert lay.z_offset(r) + lay.npp(r) == lay.z_offset(r + 1)

    def test_plane_balance(self, desc):
        lay = DistributedLayout(desc, n_scatter=7, n_groups=1)
        npps = [lay.npp(r) for r in range(7)]
        assert max(npps) - min(npps) <= 1

    def test_more_scatter_ranks_than_planes_allowed(self, desc):
        """The degenerate case task groups exist to avoid must still work."""
        lay = DistributedLayout(desc, n_scatter=desc.nr3 + 3, n_groups=1)
        npps = [lay.npp(r) for r in range(lay.R)]
        assert sum(npps) == desc.nr3
        assert min(npps) == 0

    def test_local_g_table_roundtrip(self, desc):
        """Expanding with the table must place each G on its own stick/z."""
        lay = DistributedLayout(desc, n_scatter=2, n_groups=2)
        covered = []
        for p in range(lay.P):
            g_idx, stick_local, iz = lay.local_g_table(p)
            covered.append(g_idx)
            sticks = lay.sticks_of(p)
            # each listed G is on a stick owned by p, at its own z coordinate
            np.testing.assert_array_equal(
                desc.sticks.stick_of_g[g_idx], sticks[stick_local]
            )
            np.testing.assert_array_equal(desc.grid_idx[g_idx, 2], iz)
        covered = np.concatenate(covered)
        assert len(np.unique(covered)) == desc.ngw

    def test_invalid_grid(self, desc):
        with pytest.raises(ValueError):
            DistributedLayout(desc, 0, 1)


class TestDescriptor:
    def test_paper_descriptor_scale(self):
        """The paper's workload: ecutwfc=80, alat=20 -> 120^3 grid."""
        desc = FftDescriptor(Cell(alat=20.0), ecutwfc=80.0)
        assert desc.grid_shape == (120, 120, 120)
        # Sphere radius sqrt(810) ~ 28.5: ngw ~ 97k, sticks ~ 2.5k.
        assert 80000 < desc.ngw < 110000
        assert 2300 < desc.sticks.nsticks < 2800

    def test_dual_validation(self):
        with pytest.raises(ValueError):
            FftDescriptor(Cell(alat=5.0), ecutwfc=10.0, dual=0.5)

    def test_nnr(self, desc):
        assert desc.nnr == desc.nr1 * desc.nr2 * desc.nr3
