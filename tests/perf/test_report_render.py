"""Tests for the ASCII timeline renderer and comparison tables."""

import pytest

from repro.core import RunConfig
from repro.perf.report import TIMELINE_GLYPHS, format_comparison, render_timeline
from repro.perf.tracer import Trace, trace_run

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestRenderTimeline:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="original")
        _res, trace = trace_run(cfg)
        return trace

    def test_one_row_per_stream(self, trace):
        text = render_timeline(trace, width=60)
        assert len(text.splitlines()) == len(trace.streams)

    def test_contains_phase_glyphs(self, trace):
        text = render_timeline(trace, width=80)
        assert "X" in text  # fft_xy
        assert "z" in text  # fft_z
        assert "p" in text  # prepare/pack
        assert "." in text  # idle / MPI

    def test_max_rows_truncation(self, trace):
        text = render_timeline(trace, width=40, max_rows=2)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "more streams" in lines[-1]

    def test_custom_glyphs(self, trace):
        glyphs = dict(TIMELINE_GLYPHS, fft_xy="#")
        text = render_timeline(trace, width=60, glyphs=glyphs)
        assert "#" in text
        assert "X" not in text

    def test_empty_trace(self):
        assert "no compute" in render_timeline(Trace())

    def test_width_respected(self, trace):
        text = render_timeline(trace, width=30)
        for line in text.splitlines():
            assert len(line) <= 30 + 10  # label + line


class TestFormatComparison:
    def test_rows_and_headers(self):
        text = format_comparison(
            [("ipc", 0.77, 0.75)], title="T", headers=("got", "want")
        )
        assert "T" in text
        assert "got" in text and "want" in text
        assert "0.770" in text and "0.750" in text

    def test_empty_rows(self):
        text = format_comparison([], title="empty")
        assert "empty" in text
