"""Tests for the run-comparison tool."""

import pytest

from repro.core import RunConfig
from repro.machine import knl_parameters
from repro.perf.compare import compare_runs, format_run_comparison
from repro.perf.tracer import trace_run

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)
FREQ = knl_parameters().frequency_hz


@pytest.fixture(scope="module")
def traces():
    out = {}
    for version in ("original", "ompss_perfft"):
        _res, trace = trace_run(
            RunConfig(**SMALL, ranks=2, taskgroups=2, version=version)
        )
        out[version] = trace
    return out


class TestCompareRuns:
    def test_self_comparison_is_neutral(self, traces):
        cmp = compare_runs(traces["original"], traces["original"], FREQ)
        assert cmp.regressions() == []
        assert cmp.improvements() == []
        for p in cmp.phases:
            assert p.time_delta == 0.0
            assert p.relative == 0.0

    def test_cross_version_layers(self, traces):
        cmp = compare_runs(traces["original"], traces["ompss_perfft"], FREQ)
        # The original has both MPI layers; the per-FFT version has no pack.
        assert "pack" in cmp.mpi_a
        assert "scatter" in cmp.mpi_a
        assert "pack" not in cmp.mpi_b
        assert cmp.total_compute_a > 0 and cmp.total_compute_b > 0

    def test_phase_union_includes_disappearing_phases(self, traces):
        cmp = compare_runs(traces["original"], traces["ompss_perfft"], FREQ)
        names = {p.name for p in cmp.phases}
        assert "pack_sticks" in names  # present in A only
        pack = next(p for p in cmp.phases if p.name == "pack_sticks")
        assert pack.time_b == 0.0
        assert pack.relative == -1.0

    def test_new_phase_relative_is_inf(self, traces):
        cmp = compare_runs(traces["ompss_perfft"], traces["original"], FREQ)
        pack = next(p for p in cmp.phases if p.name == "pack_sticks")
        assert pack.relative == float("inf")

    def test_thresholded_views(self, traces):
        cmp = compare_runs(traces["original"], traces["ompss_perfft"], FREQ)
        assert all(p.relative > 0.05 for p in cmp.regressions())
        assert all(p.relative < -0.05 for p in cmp.improvements())

    def test_render(self, traces):
        cmp = compare_runs(traces["original"], traces["ompss_perfft"], FREQ)
        text = format_run_comparison(cmp, labels=("orig", "ompss"))
        assert "orig time" in text and "ompss time" in text
        assert "total compute" in text
        assert "MPI scatter" in text
        assert "fft_xy" in text
