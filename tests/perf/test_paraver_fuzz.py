"""Property tests: Paraver write/read round-trips on synthetic traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cpu import ComputeRecord
from repro.machine.topology import NodeTopology
from repro.mpisim.world import MpiRecord
from repro.perf.paraver import MPI_CALL_CODES, STATE_CODES, read_prv, write_prv
from repro.perf.tracer import Trace

PHASES = [p for p in STATE_CODES if p != "idle"]
CALLS = list(MPI_CALL_CODES)
TOPO = NodeTopology(n_cores=8, threads_per_core=2, frequency_hz=1e9)


@st.composite
def synthetic_trace(draw):
    trace = Trace()
    n_streams = draw(st.integers(min_value=1, max_value=4))
    for s in range(n_streams):
        t = 0.0
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            dur = draw(st.floats(min_value=1e-6, max_value=1e-3))
            phase = draw(st.sampled_from(PHASES))
            trace.compute.append(
                ComputeRecord(
                    stream=(s, 0),
                    thread=TOPO.hw_thread(s % 8, 0),
                    phase=phase,
                    instructions=draw(st.integers(min_value=1, max_value=10**9)),
                    start=t,
                    end=t + dur,
                )
            )
            t += dur
            if draw(st.booleans()):
                mdur = draw(st.floats(min_value=1e-6, max_value=1e-4))
                trace.mpi.append(
                    MpiRecord(
                        stream=(s, 0),
                        call=draw(st.sampled_from(CALLS)),
                        comm_id=0,
                        comm_name="world",
                        t_begin=t,
                        t_end=t + mdur,
                        bytes_sent=draw(st.floats(min_value=0, max_value=1e6)),
                        sync_time=0.0,
                    )
                )
                t += mdur
    return trace


class TestParaverFuzz:
    @settings(max_examples=25, deadline=None)
    @given(trace=synthetic_trace())
    def test_roundtrip_preserves_record_counts_and_codes(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prv")
        prv = write_prv(tmp / "fuzz", trace)
        parsed = read_prv(prv)

        assert len(parsed["states"]) == len(trace.compute) + len(trace.mpi)
        assert len(parsed["events"]) == len(trace.compute) + 2 * len(trace.mpi)

        # State code multiset matches the trace.
        want = sorted(
            [STATE_CODES[r.phase] for r in trace.compute]
            + [MPI_CALL_CODES[r.call] for r in trace.mpi]
        )
        got = sorted(s[-1] for s in parsed["states"])
        assert got == want

        # Durations survive the ns quantisation to within 1 ns.
        for rec in trace.compute:
            matches = [
                s
                for s in parsed["states"]
                if s[-1] == STATE_CODES[rec.phase]
                and abs(s[3] - round(rec.start * 1e9)) <= 1
            ]
            assert matches

    @settings(max_examples=15, deadline=None)
    @given(trace=synthetic_trace())
    def test_instruction_events_preserved(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prv")
        prv = write_prv(tmp / "fuzz2", trace)
        parsed = read_prv(prv)
        from repro.perf.paraver import EV_INSTRUCTIONS

        instr_events = sorted(
            v for _c, _t, _th, _time, etype, v in parsed["events"] if etype == EV_INSTRUCTIONS
        )
        assert instr_events == sorted(int(r.instructions) for r in trace.compute)
