"""Property tests: Paraver write/read round-trips on synthetic traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cpu import ComputeRecord
from repro.machine.topology import NodeTopology
from repro.mpisim.world import MpiRecord
from repro.perf.paraver import MPI_CALL_CODES, STATE_CODES, read_prv, write_prv
from repro.perf.tracer import Trace

PHASES = [p for p in STATE_CODES if p != "idle"]
CALLS = list(MPI_CALL_CODES)
TOPO = NodeTopology(n_cores=8, threads_per_core=2, frequency_hz=1e9)


@st.composite
def synthetic_trace(draw):
    trace = Trace()
    n_streams = draw(st.integers(min_value=1, max_value=4))
    for s in range(n_streams):
        t = 0.0
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            dur = draw(st.floats(min_value=1e-6, max_value=1e-3))
            phase = draw(st.sampled_from(PHASES))
            trace.compute.append(
                ComputeRecord(
                    stream=(s, 0),
                    thread=TOPO.hw_thread(s % 8, 0),
                    phase=phase,
                    instructions=draw(st.integers(min_value=1, max_value=10**9)),
                    start=t,
                    end=t + dur,
                )
            )
            t += dur
            if draw(st.booleans()):
                mdur = draw(st.floats(min_value=1e-6, max_value=1e-4))
                trace.mpi.append(
                    MpiRecord(
                        stream=(s, 0),
                        call=draw(st.sampled_from(CALLS)),
                        comm_id=0,
                        comm_name="world",
                        t_begin=t,
                        t_end=t + mdur,
                        bytes_sent=draw(st.floats(min_value=0, max_value=1e6)),
                        sync_time=0.0,
                    )
                )
                t += mdur
    # Matched point-to-point pairs (the type-3 communication records).
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        src = draw(st.integers(min_value=0, max_value=n_streams - 1))
        dst = draw(st.integers(min_value=0, max_value=n_streams - 1))
        tag = draw(st.integers(min_value=0, max_value=99))
        t0 = draw(st.floats(min_value=0.0, max_value=1e-3))
        sdur = draw(st.floats(min_value=1e-6, max_value=1e-4))
        rdur = draw(st.floats(min_value=1e-6, max_value=1e-4))
        nbytes = draw(st.integers(min_value=0, max_value=10**6))
        trace.mpi.append(
            MpiRecord(
                stream=(src, 0),
                call="send",
                comm_id=0,
                comm_name="world",
                t_begin=t0,
                t_end=t0 + sdur,
                bytes_sent=float(nbytes),
                sync_time=0.0,
                src=src,
                dst=dst,
                tag=tag,
            )
        )
        trace.mpi.append(
            MpiRecord(
                stream=(dst, 0),
                call="recv",
                comm_id=0,
                comm_name="world",
                t_begin=t0,
                t_end=t0 + rdur,
                bytes_sent=0.0,
                sync_time=0.0,
                src=src,
                dst=dst,
                tag=tag,
            )
        )
    return trace


class TestParaverFuzz:
    @settings(max_examples=25, deadline=None)
    @given(trace=synthetic_trace())
    def test_roundtrip_preserves_record_counts_and_codes(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prv")
        prv = write_prv(tmp / "fuzz", trace)
        parsed = read_prv(prv)

        assert len(parsed["states"]) == len(trace.compute) + len(trace.mpi)
        assert len(parsed["events"]) == len(trace.compute) + 2 * len(trace.mpi)

        # State code multiset matches the trace.
        want = sorted(
            [STATE_CODES[r.phase] for r in trace.compute]
            + [MPI_CALL_CODES[r.call] for r in trace.mpi]
        )
        got = sorted(s[-1] for s in parsed["states"])
        assert got == want

        # Durations survive the ns quantisation to within 1 ns.
        for rec in trace.compute:
            matches = [
                s
                for s in parsed["states"]
                if s[-1] == STATE_CODES[rec.phase]
                and abs(s[3] - round(rec.start * 1e9)) <= 1
            ]
            assert matches

    @settings(max_examples=25, deadline=None)
    @given(trace=synthetic_trace())
    def test_roundtrip_preserves_communication_records(self, trace, tmp_path_factory):
        from repro.perf.paraver import _match_p2p

        tmp = tmp_path_factory.mktemp("prv")
        prv = write_prv(tmp / "fuzz3", trace)
        parsed = read_prv(prv)

        pairs = _match_p2p(trace.mpi)
        assert len(parsed["comms"]) == len(pairs)
        want = sorted(
            (int(send.bytes_sent), send.tag, round(send.t_begin * 1e9), round(recv.t_end * 1e9))
            for send, recv in pairs
        )
        got = sorted((c[10], c[11], c[3], c[9]) for c in parsed["comms"])
        for (w_size, w_tag, w_ls, w_pr), (g_size, g_tag, g_ls, g_pr) in zip(want, got):
            assert g_size == w_size
            assert g_tag == w_tag
            assert abs(g_ls - w_ls) <= 1
            assert abs(g_pr - w_pr) <= 1
        # Sender and receiver sides reference real streams (1-based cpu ids).
        n_streams = len(trace.streams)
        for c in parsed["comms"]:
            assert 1 <= c[0] <= n_streams
            assert 1 <= c[5] <= n_streams

    @settings(max_examples=15, deadline=None)
    @given(trace=synthetic_trace())
    def test_instruction_events_preserved(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prv")
        prv = write_prv(tmp / "fuzz2", trace)
        parsed = read_prv(prv)
        from repro.perf.paraver import EV_INSTRUCTIONS

        instr_events = sorted(
            v for _c, _t, _th, _time, etype, v in parsed["events"] if etype == EV_INSTRUCTIONS
        )
        assert instr_events == sorted(int(r.instructions) for r in trace.compute)
