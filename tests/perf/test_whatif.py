"""Tests for the Dimemas-style what-if replays."""

import pytest

from repro.core import RunConfig
from repro.perf.whatif import SWEEPABLE_PARAMETERS, runtime_attribution, whatif_sweep

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


@pytest.fixture(scope="module")
def config():
    return RunConfig(**SMALL, ranks=2, taskgroups=2, version="original")


class TestSweep:
    def test_latency_sweep_is_monotone(self, config):
        points = whatif_sweep(config, "net_latency", [0.0, 1e-5, 1e-4])
        times = [t for _v, t in points]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_frequency_sweep_speeds_up(self, config):
        points = whatif_sweep(config, "frequency_hz", [0.7e9, 1.4e9, 2.8e9])
        times = [t for _v, t in points]
        assert times[0] > times[1] > times[2]

    def test_bandwidth_sweep(self, config):
        points = whatif_sweep(config, "mem_bandwidth", [1e9, 6.9e10, 1e15])
        times = [t for _v, t in points]
        assert times[0] > times[2]

    def test_unknown_parameter_rejected(self, config):
        with pytest.raises(ValueError, match="cannot sweep"):
            whatif_sweep(config, "magic", [1.0])

    def test_all_listed_parameters_sweepable(self, config):
        for parameter in SWEEPABLE_PARAMETERS:
            if parameter == "compute_jitter":
                values = [0.0]
            elif parameter == "net_latency":
                values = [1e-6]
            else:
                values = [1e10]
            points = whatif_sweep(config, parameter, values)
            assert len(points) == 1 and points[0][1] > 0


class TestAttribution:
    def test_every_whatif_is_no_slower(self, config):
        attr = runtime_attribution(config)
        assert attr["ideal_network"] <= attr["measured"] * 1.001
        assert attr["infinite_bandwidth"] <= attr["measured"] * 1.02
        # Jitter changes the noise, not systematically the mean — allow 10%.
        assert attr["no_jitter"] <= attr["measured"] * 1.1

    def test_contention_matters_at_high_occupancy(self):
        """On a node-filling run, lifting the bandwidth cap must help more
        than at low occupancy."""
        low = runtime_attribution(RunConfig(**SMALL, ranks=1, taskgroups=2))
        high = runtime_attribution(RunConfig(**SMALL, ranks=8, taskgroups=2))
        gain_low = 1 - low["infinite_bandwidth"] / low["measured"]
        gain_high = 1 - high["infinite_bandwidth"] / high["measured"]
        assert gain_high > gain_low
