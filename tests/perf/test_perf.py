"""Tests for the tracing, POP model, timeline and Paraver modules."""

import numpy as np
import pytest

from repro.core import RunConfig
from repro.machine import knl_parameters
from repro.perf import (
    communicator_structure,
    factors_from_run,
    format_factor_table,
    format_series,
    ideal_network,
    ipc_histogram,
    mpi_intervals,
    phase_intervals,
    phase_summary,
    read_prv,
    trace_run,
    write_prv,
)
from repro.perf.popmodel import BaseMetrics
from repro.core.driver import run_fft_phase

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)
FREQ = knl_parameters().frequency_hz


@pytest.fixture(scope="module")
def traced():
    cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="original")
    return trace_run(cfg)


@pytest.fixture(scope="module")
def traced_tasks():
    cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="ompss_perfft")
    return trace_run(cfg)


class TestTracer:
    def test_compute_records_cover_all_phases(self, traced):
        _res, trace = traced
        phases = {r.phase for r in trace.compute}
        assert phases == {
            "prepare_psis",
            "pack_sticks",
            "fft_z",
            "scatter_reorder",
            "fft_xy",
            "vofr",
            "unpack_sticks",
        }

    def test_streams_and_span(self, traced):
        res, trace = traced
        assert len(trace.streams) == 4
        assert trace.span == pytest.approx(res.phase_time, rel=1e-6)

    def test_per_stream_records_sorted(self, traced):
        _res, trace = traced
        recs = trace.compute_of((0, 0))
        starts = [r.start for r in recs]
        assert starts == sorted(starts)
        assert all(r.stream == (0, 0) for r in recs)

    def test_task_records_only_for_task_versions(self, traced, traced_tasks):
        assert traced[1].tasks == []
        _res, trace = traced_tasks
        assert len(trace.tasks) == 4 * 2  # 4 bands per rank... (nbnd/2=4) x 2 ranks

    def test_mpi_records_present(self, traced):
        _res, trace = traced
        assert any(r.call in ("alltoall", "alltoallw") for r in trace.mpi)


class TestPopModel:
    def test_base_column_is_unity_scalability(self, traced):
        res, _trace = traced
        fs = factors_from_run(res)
        assert fs.computation_scalability == pytest.approx(1.0)
        assert fs.ipc_scalability == pytest.approx(1.0)
        assert fs.instruction_scalability == pytest.approx(1.0)

    def test_factor_identities(self, traced):
        res, _trace = traced
        ideal = run_fft_phase(res.config, knl=ideal_network())
        fs = factors_from_run(res, ideal_time=ideal.phase_time)
        assert fs.parallel_efficiency == pytest.approx(
            fs.load_balance * fs.communication_efficiency, rel=1e-9
        )
        assert fs.global_efficiency == pytest.approx(
            fs.parallel_efficiency * fs.computation_scalability, rel=1e-9
        )
        # Sync x transfer ~ comm eff (small slack from the replay's jitter
        # reordering).
        assert fs.synchronization_efficiency * fs.transfer_efficiency == pytest.approx(
            fs.communication_efficiency, rel=0.05
        )

    def test_factors_in_unit_range(self, traced):
        res, _trace = traced
        ideal = run_fft_phase(res.config, knl=ideal_network())
        fs = factors_from_run(res, ideal_time=ideal.phase_time)
        for label, value in fs.as_rows():
            assert 0.0 < value <= 1.01, label

    def test_ideal_network_is_faster(self, traced):
        res, _trace = traced
        ideal = run_fft_phase(res.config, knl=ideal_network())
        assert ideal.phase_time < res.phase_time

    def test_scalability_drops_with_more_streams(self):
        # Per-message MPI-stack instructions off: on the toy workload they
        # would dominate the instruction balance this test checks.
        from repro.core import CostConstants

        cc = CostConstants(instr_per_message=0.0)
        base_res = run_fft_phase(RunConfig(**SMALL, ranks=1, taskgroups=2), cost_constants=cc)
        base = BaseMetrics.from_run(base_res)
        big = run_fft_phase(RunConfig(**SMALL, ranks=4, taskgroups=2), cost_constants=cc)
        fs = factors_from_run(big, base=base)
        assert fs.instruction_scalability == pytest.approx(1.0, abs=0.02)
        assert fs.ipc_scalability <= 1.01

    def test_empty_run_rejected(self, traced):
        res, _ = traced
        import dataclasses

        broken = dataclasses.replace(res, phase_time=0.0)
        with pytest.raises(ValueError):
            factors_from_run(broken)


class TestTimeline:
    def test_phase_intervals_sorted_with_ipc(self, traced):
        _res, trace = traced
        ivs = phase_intervals(trace, FREQ)
        begins = [iv.begin for iv in ivs]
        assert begins == sorted(begins)
        assert all(iv.duration >= 0 for iv in ivs)
        assert all(0 <= iv.ipc <= 2.0 for iv in ivs)

    def test_mpi_intervals(self, traced):
        _res, trace = traced
        ivs = mpi_intervals(trace)
        assert {iv.call for iv in ivs} == {"alltoallw"}
        assert all(iv.comm_name.startswith(("pack", "scatter")) for iv in ivs)

    def test_phase_summary_quotes_phase_ipcs(self, traced):
        res, trace = traced
        summary = phase_summary(trace, FREQ)
        assert summary["fft_xy"]["ipc"] == pytest.approx(
            res.cpu.counters.phase_ipc("fft_xy"), rel=1e-9
        )
        assert summary["prepare_psis"]["ipc"] < 0.1

    def test_ipc_histogram_conserves_time(self, traced):
        _res, trace = traced
        hist, edges, streams = ipc_histogram(trace, FREQ, bins=16)
        assert hist.shape == (len(streams), 16)
        total_time = sum(r.duration for r in trace.compute)
        assert hist.sum() == pytest.approx(total_time, rel=1e-9)

    def test_histogram_phase_filter(self, traced):
        _res, trace = traced
        hist, _edges, _streams = ipc_histogram(trace, FREQ, phases={"fft_xy"})
        xy_time = sum(r.duration for r in trace.compute if r.phase == "fft_xy")
        assert hist.sum() == pytest.approx(xy_time, rel=1e-9)

    def test_communicator_structure_matches_paper_layout(self, traced):
        """R pack comms of T consecutive ranks; T scatter comms of R strided."""
        _res, trace = traced
        comms = communicator_structure(trace)
        assert comms["pack0"]["streams"] == [0, 1]
        assert comms["pack1"]["streams"] == [2, 3]
        assert comms["scatter0"]["streams"] == [0, 2]
        assert comms["scatter1"]["streams"] == [1, 3]


class TestParaver:
    def test_write_read_roundtrip(self, traced, tmp_path):
        _res, trace = traced
        prv = write_prv(tmp_path / "run", trace)
        assert prv.exists()
        assert prv.with_suffix(".pcf").exists()
        assert prv.with_suffix(".row").exists()
        parsed = read_prv(prv)
        n_mpi = len(trace.mpi)
        assert len(parsed["states"]) == len(trace.compute) + n_mpi
        assert len(parsed["events"]) == len(trace.compute) + 2 * n_mpi
        assert parsed["duration_ns"] > 0

    def test_state_codes_distinguish_phases(self, traced, tmp_path):
        _res, trace = traced
        from repro.perf.paraver import MPI_CALL_CODES, STATE_CODES

        prv = write_prv(tmp_path / "run2", trace)
        parsed = read_prv(prv)
        seen = {s[-1] for s in parsed["states"]}
        assert STATE_CODES["fft_xy"] in seen
        assert MPI_CALL_CODES["alltoallw"] in seen

    def test_reject_non_paraver_file(self, tmp_path):
        bad = tmp_path / "x.prv"
        bad.write_text("hello\n")
        with pytest.raises(ValueError, match="header"):
            read_prv(bad)


class TestReport:
    def test_factor_table_renders_all_rows(self, traced):
        res, _ = traced
        fs = factors_from_run(res)
        text = format_factor_table([("1x2", fs), ("also", fs)], title="Table I")
        assert "Table I" in text
        assert "Load Balance" in text
        assert text.count("%") >= 18

    def test_factor_table_with_reference(self, traced):
        res, _ = traced
        fs = factors_from_run(res)
        text = format_factor_table(
            [("1x2", fs)], reference={"Parallel efficiency": [95.75]}
        )
        assert "(paper)" in text
        assert "95.75" in text

    def test_series_bars_scale(self):
        text = format_series([("a", 0.1), ("b", 0.05)], title="Fig")
        lines = text.splitlines()
        assert lines[0] == "Fig"
        assert lines[1].count("#") > lines[2].count("#")
