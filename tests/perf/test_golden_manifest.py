"""Golden-manifest regression gate: the committed 8x8 stable manifest.

``tests/perf/golden/run_8x8_quick.json`` is the stable run manifest
(``--stable-manifest`` semantics: no wall clock, pinned ``created``) of the
seeded 8-rank x 8-taskgroup quick-workload run.  The test regenerates the
manifest from scratch and compares it against the committed fixture with a
float tolerance of 1e-9 — any drift in the simulator, the cost model, the
executors or the manifest schema fails with the human-readable
``perf diff`` report instead of a wall of JSON.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -c \
      "from tests.perf.test_golden_manifest import write_fixture; write_fixture()"

and commit the updated fixture together with the change that moved it.
"""

import json
import math
import pathlib

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.perf import diff_manifests, format_manifest_diff
from repro.telemetry.manifest import build_manifest

FIXTURE = pathlib.Path(__file__).parent / "golden" / "run_8x8_quick.json"

#: Relative tolerance for float leaves (absorbs libm differences across
#: platforms; anything beyond this is a real behaviour change).
RTOL = 1e-9


def golden_config() -> RunConfig:
    return RunConfig(
        ranks=8,
        taskgroups=8,
        version="original",
        ecutwfc=30.0,
        alat=10.0,
        nbnd=32,
        telemetry=True,
    )


def generate_manifest() -> dict:
    """The manifest the fixture pins, rebuilt from scratch."""
    result = run_fft_phase(golden_config())
    manifest = build_manifest(result, wall_time_s=None, created="(stable)")
    # Round-trip through JSON so float repr and container types match the
    # committed file exactly.
    return json.loads(json.dumps(manifest))


def write_fixture() -> pathlib.Path:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(generate_manifest(), indent=2) + "\n")
    return FIXTURE


def _leaf_mismatches(golden, fresh, path="", out=None):
    """Recursive float-tolerant comparison; returns mismatched paths."""
    if out is None:
        out = []
    if isinstance(golden, dict) and isinstance(fresh, dict):
        for key in sorted(set(golden) | set(fresh)):
            if key not in golden or key not in fresh:
                out.append(f"{path}.{key} (missing on one side)")
            else:
                _leaf_mismatches(golden[key], fresh[key], f"{path}.{key}", out)
    elif isinstance(golden, list) and isinstance(fresh, list):
        if len(golden) != len(fresh):
            out.append(f"{path} (length {len(golden)} vs {len(fresh)})")
        else:
            for i, (g, f) in enumerate(zip(golden, fresh)):
                _leaf_mismatches(g, f, f"{path}[{i}]", out)
    elif isinstance(golden, float) or isinstance(fresh, float):
        ok = (
            isinstance(golden, (int, float))
            and isinstance(fresh, (int, float))
            and not isinstance(golden, bool)
            and not isinstance(fresh, bool)
            and math.isclose(golden, fresh, rel_tol=RTOL, abs_tol=1e-300)
        )
        if not ok:
            out.append(f"{path} ({golden!r} vs {fresh!r})")
    elif golden != fresh:
        out.append(f"{path} ({golden!r} vs {fresh!r})")
    return out


class TestGoldenManifest:
    def test_fixture_exists_and_is_valid(self):
        from repro.telemetry.manifest import validate_manifest

        assert FIXTURE.exists(), (
            f"golden fixture missing: {FIXTURE}; regenerate with write_fixture()"
        )
        assert validate_manifest(json.loads(FIXTURE.read_text())) == []

    def test_regenerated_manifest_matches_fixture(self):
        golden = json.loads(FIXTURE.read_text())
        fresh = generate_manifest()
        mismatches = _leaf_mismatches(golden, fresh)
        if mismatches:
            report = format_manifest_diff(diff_manifests(golden, fresh))
            shown = "\n".join(f"  {m}" for m in mismatches[:20])
            more = len(mismatches) - 20
            if more > 0:
                shown += f"\n  ... and {more} more"
            pytest.fail(
                "regenerated run manifest drifted from the golden fixture "
                f"({len(mismatches)} leaf difference(s)).\n"
                f"Changed leaves:\n{shown}\n\n"
                f"perf diff (golden -> regenerated):\n{report}\n\n"
                "If this change is intentional, regenerate the fixture "
                "(see module docstring) and commit it with your change."
            )

    def test_fixture_is_stable(self):
        """The committed file must carry no wall-clock or timestamp noise."""
        golden = json.loads(FIXTURE.read_text())
        assert golden["created"] == "(stable)"
        assert golden["timing"]["wall_time_s"] is None
