"""POP factors for the hybrid (multi-threaded) executors."""

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.perf.popmodel import BaseMetrics, factors_from_run, ideal_network

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestHybridFactors:
    @pytest.mark.parametrize("version", ["ompss_perfft", "ompss_steps", "ompss_combined", "pipelined"])
    def test_factors_well_formed_for_every_executor(self, version):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version)
        result = run_fft_phase(cfg)
        ideal = run_fft_phase(cfg, knl=ideal_network())
        fs = factors_from_run(result, ideal_time=ideal.phase_time)
        for label, value in fs.as_rows():
            assert 0.0 < value <= 1.05, (version, label)
        assert fs.parallel_efficiency == pytest.approx(
            fs.load_balance * fs.communication_efficiency, rel=1e-9
        )

    def test_streams_are_threads_for_task_versions(self):
        """Table II's columns treat each (rank, thread) as a process."""
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=4, version="ompss_perfft")
        result = run_fft_phase(cfg)
        assert len(result.cpu.counters.streams) == 2 * 4

    def test_cross_version_base_comparison(self):
        """Using the original's 1-rank run as the base for a task version's
        scalability is meaningful: identical workload, same instruction
        accounting up to the per-message MPI-stack terms."""
        base_res = run_fft_phase(RunConfig(**SMALL, ranks=1, taskgroups=2))
        base = BaseMetrics.from_run(base_res)
        task_res = run_fft_phase(
            RunConfig(**SMALL, ranks=2, taskgroups=2, version="ompss_perfft")
        )
        fs = factors_from_run(task_res, base=base)
        assert 0.5 < fs.instruction_scalability <= 1.1
