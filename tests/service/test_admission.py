"""Admission control: bounded queue, backlog budget, batch downgrades."""

import pytest

from repro.service.admission import AdmissionController
from repro.service.request import preset_request


def controller(**kwargs):
    defaults = dict(max_queue_depth=4, batch_depth=2, default_deadline_s=2.0)
    defaults.update(kwargs)
    return AdmissionController(**defaults)


class TestAcceptPath:
    def test_accepts_under_all_budgets(self):
        adm = controller()
        decision = adm.decide(preset_request("small"))
        assert decision.action == "accept"
        assert decision.est_cost_s == pytest.approx(adm.price(preset_request("small")))
        assert adm.depth == 1
        assert adm.backlog_s == pytest.approx(decision.est_cost_s)

    def test_finish_releases_occupancy(self):
        adm = controller()
        decision = adm.decide(preset_request("small"))
        adm.finish(decision)
        assert adm.depth == 0
        assert adm.backlog_s == pytest.approx(0.0)

    def test_finish_of_shed_is_a_noop(self):
        adm = controller()
        adm.draining = True
        decision = adm.decide(preset_request("small"))
        assert decision.action == "shed"
        adm.finish(decision)
        assert adm.depth == 0


class TestQueueBound:
    def test_full_queue_sheds_small(self):
        adm = controller(max_queue_depth=2)
        for _ in range(2):
            assert adm.decide(preset_request("small")).action == "accept"
        decision = adm.decide(preset_request("small"))
        assert (decision.action, decision.reason) == ("shed", "queue_full")

    def test_full_queue_batches_large(self):
        adm = controller(max_queue_depth=1, batch_depth=1)
        assert adm.decide(preset_request("small")).action == "accept"
        assert adm.decide(preset_request("large")).action == "batch"
        assert adm.batch_occupancy == 1
        # Batch lane is bounded too.
        decision = adm.decide(preset_request("large"))
        assert (decision.action, decision.reason) == ("shed", "queue_full")


class TestBacklogBudget:
    def test_backlog_past_deadline_sheds(self):
        adm = controller(workers=1)
        adm.backlog_s = 10.0  # far beyond the 2 s default deadline
        decision = adm.decide(preset_request("small"))
        assert (decision.action, decision.reason) == ("shed", "backlog")

    def test_per_request_deadline_overrides_default(self):
        adm = controller(workers=1)
        adm.backlog_s = 1.0
        generous = preset_request("small", deadline_s=30.0)
        assert adm.decide(generous).action == "accept"
        tight = preset_request("small", deadline_s=0.5)
        assert adm.decide(tight).action == "shed"

    def test_workers_divide_the_backlog(self):
        # The same backlog that sheds on 1 worker fits on 8.
        request = preset_request("small", deadline_s=1.0)
        solo = controller(workers=1)
        solo.backlog_s = 4.0
        assert solo.decide(request).action == "shed"
        wide = controller(workers=8)
        wide.backlog_s = 4.0
        assert wide.decide(request).action == "accept"

    def test_backlogged_large_goes_to_batch(self):
        adm = controller(workers=1)
        adm.backlog_s = 10.0
        assert adm.decide(preset_request("large")).action == "batch"


class TestDrainingAndStats:
    def test_draining_sheds_everything(self):
        adm = controller()
        adm.draining = True
        for cls in ("small", "medium", "large"):
            decision = adm.decide(preset_request(cls))
            assert (decision.action, decision.reason) == ("shed", "shutdown")

    def test_peaks_are_high_water_marks(self):
        adm = controller()
        decisions = [adm.decide(preset_request("small")) for _ in range(3)]
        for decision in decisions:
            adm.finish(decision)
        stats = adm.stats()
        assert stats["depth"] == 0
        assert stats["depth_peak"] == 3
        assert stats["backlog_s"] == 0.0
        assert stats["backlog_peak_s"] > 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(batch_depth=-1)
