"""The live asyncio engine: real runs, wall deadlines, drain invariant."""

import asyncio

import pytest

from repro.faults.service import ServiceChaos
from repro.service.manifest import (
    build_service_manifest,
    validate_service_manifest,
)
from repro.service.request import preset_request
from repro.service.server import AsyncService, ServiceConfig


def serve(coro_fn):
    """Run one service session on a fresh event loop."""
    return asyncio.run(coro_fn())


# Generous deadlines: CI boxes stall unpredictably, and these tests pin
# behaviour (verdicts, accounting), not latency.
SLACK_S = 60.0


class TestHappyPath:
    def test_submit_runs_and_memoizes(self):
        async def session():
            service = AsyncService(ServiceConfig(workers=2))
            await service.start()
            request = preset_request("small", deadline_s=SLACK_S, seed=4001)
            first = await service.submit(request)
            second = await service.submit(request)
            await service.drain()
            return service, first, second

        service, first, second = serve(session)
        assert first["verdict"] == "ok"
        assert first["summary"]["phase_time_s"] > 0.0
        assert second["verdict"] == "memoized"
        # The memo hit serves the identical summary (digest-keyed).
        assert second["summary"] == first["summary"]
        assert service.core.counts["ok"] == 1
        assert service.core.counts["memoized"] == 1

    def test_distinct_executors_run_independently(self):
        async def session():
            service = AsyncService(ServiceConfig(workers=2))
            await service.start()
            verdicts = await asyncio.gather(
                service.submit(
                    preset_request("small", deadline_s=SLACK_S, seed=4002)
                ),
                service.submit(
                    preset_request(
                        "small",
                        version="ompss_perfft",
                        deadline_s=SLACK_S,
                        seed=4002,
                    )
                ),
            )
            await service.drain()
            return service, verdicts

        service, verdicts = serve(session)
        assert [v["verdict"] for v in verdicts] == ["ok", "ok"]
        assert service.core.counts["ok"] == 2


class TestDeadlines:
    # A zeroed cost model admits everything: the admission layer is blind,
    # so a hopeless deadline must be caught downstream — exactly the
    # mispricing scenario the in-run cancellation hook exists for.
    MISPRICED = ServiceConfig(workers=1, overhead_s=0.0, per_unit_s=0.0)

    def test_hopeless_deadline_expires_not_hangs(self):
        async def session():
            service = AsyncService(self.MISPRICED)
            await service.start()
            # The large preset runs for tens of milliseconds even with warm
            # process caches, so a 1 ms budget always expires mid-run.
            verdict = await service.submit(
                preset_request("large", deadline_s=0.001, seed=4003)
            )
            await service.drain()
            return service, verdict

        service, verdict = serve(session)
        assert verdict["verdict"] == "expired"
        assert service.core.counts["expired"] == 1
        assert service.core.counts["ok"] == 0

    def test_expiry_keeps_accounting_conserved(self):
        async def session():
            service = AsyncService(self.MISPRICED)
            await service.start()
            requests = [
                preset_request("medium", deadline_s=0.002, seed=4100 + i)
                for i in range(3)
            ]
            await asyncio.gather(*(service.submit(r) for r in requests))
            await service.drain()
            return service

        service = serve(session)
        c = service.core.counts
        served = c["ok"] + c["batched"] + c["expired"] + c["failed"] + c["memoized"]
        assert c["accepted"] == served


class TestDrainInvariant:
    def test_zero_accepted_then_lost(self):
        async def session():
            service = AsyncService(ServiceConfig(workers=2, max_queue_depth=8))
            await service.start()
            requests = [
                preset_request("small", deadline_s=SLACK_S, seed=4200 + i)
                for i in range(10)
            ]
            tasks = [asyncio.create_task(service.submit(r)) for r in requests]
            await asyncio.sleep(0)  # let submissions enter the queue
            await asyncio.gather(*tasks)
            await service.drain()
            return service

        service = serve(session)
        c = service.core.counts
        assert c["submitted"] == 10
        served = c["ok"] + c["batched"] + c["expired"] + c["failed"] + c["memoized"]
        assert c["accepted"] == served
        # Every record reached a terminal verdict.
        assert len(service.core.records) == c["submitted"]

    def test_submissions_after_drain_are_shed_shutdown(self):
        async def session():
            service = AsyncService(ServiceConfig())
            await service.start()
            await service.drain()
            verdict = await service.submit(
                preset_request("small", deadline_s=SLACK_S, seed=4300)
            )
            return service, verdict

        service, verdict = serve(session)
        assert verdict == {"verdict": "shed", "reason": "shutdown"}
        assert service.core.shed_reasons["shutdown"] == 1


class TestChaosRetries:
    def test_service_injected_failures_retry_with_bumped_seeds(self):
        chaos = ServiceChaos(name="flaky", seed=3, failure_rate=0.45)

        async def session():
            service = AsyncService(
                ServiceConfig(workers=2, retry_base_backoff_s=0.001), chaos=chaos
            )
            await service.start()
            requests = [
                preset_request("small", deadline_s=SLACK_S, seed=4400 + i)
                for i in range(8)
            ]
            verdicts = await asyncio.gather(*(service.submit(r) for r in requests))
            await service.drain()
            return service, verdicts

        service, verdicts = serve(session)
        c = service.core.counts
        assert c["retries"] >= 1
        # Retried-then-ok requests report > 1 attempt in their records.
        multi = [r for r in service.core.records if r["attempts"] > 1]
        assert multi
        served = c["ok"] + c["batched"] + c["expired"] + c["failed"] + c["memoized"]
        assert c["accepted"] == served


class TestLiveManifest:
    @pytest.fixture(scope="class")
    def drained_service(self):
        async def session():
            service = AsyncService(ServiceConfig(workers=2))
            await service.start()
            request = preset_request("small", deadline_s=SLACK_S, seed=4500)
            await service.submit(request)
            await service.submit(request)  # memo food
            report = await service.drain()
            return service, report

        return serve(session)

    def test_live_manifest_validates(self, drained_service):
        service, report = drained_service
        manifest = build_service_manifest(
            service.core, load={}, stable=False, slo=report
        )
        assert validate_service_manifest(manifest) == []
        assert manifest["slo"]["served"] == 2

    def test_live_manifest_exports_plan_cache_counters(self, drained_service):
        # Satellite pin: live service manifests export the FFT plan LRU's
        # process-wide hit/miss counters as warmth diagnostics.  Only
        # data-mode runs on the native backend build mixed-radix plans, so
        # warm the cache and check the manifest reflects the live counters.
        from repro.core import RunConfig, run_fft_phase
        from repro.fft.plan import plan_cache_stats

        service, report = drained_service
        before = plan_cache_stats()
        run_fft_phase(
            RunConfig(
                ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2,
                data_mode=True, fft_backend="native",
            )
        )
        manifest = build_service_manifest(
            service.core, load={}, stable=False, slo=report
        )
        cache = manifest["plan_cache"]
        assert set(cache) >= {"hits", "misses", "evictions", "size"}
        assert cache["hits"] + cache["misses"] > before["hits"] + before["misses"]
        assert cache == plan_cache_stats()

    def test_slo_report_shape(self, drained_service):
        _service, report = drained_service
        assert report["served"] == 2
        assert report["requests_per_s"] > 0.0
        # Memo hits are served instantly and excluded from latency samples
        # (they would skew the percentiles toward zero); one real run.
        assert report["latency"]["count"] == 1
        assert report["counts"]["submitted"] == 2
