"""The serve / loadgen CLI surface and its manifest plumbing."""

import json

import pytest

from repro.cli import main

CHAOS = {
    "kind": "repro.service_chaos",
    "name": "cli-test",
    "seed": 7,
    "failure_rate": 0.05,
    "outages": [{"version": "ompss_perfft", "start_s": 1.0, "duration_s": 1.0}],
}


@pytest.fixture()
def chaos_file(tmp_path):
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(CHAOS))
    return path


class TestServe:
    def request_lines(self, n=4):
        return "".join(
            json.dumps(
                {
                    "kind": "repro.service_request",
                    "ecutwfc": 12.0,
                    "alat": 5.0,
                    "nbnd": 8,
                    "seed": 5000 + i % 2,
                }
            )
            + "\n"
            for i in range(n)
        )

    def test_serves_jsonl_and_writes_artifacts(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(self.request_lines())
        responses = tmp_path / "responses.jsonl"
        manifest = tmp_path / "service.json"
        code = main(
            [
                "serve",
                "--requests", str(requests),
                "--responses", str(responses),
                "--manifest", str(manifest),
            ]
        )
        assert code == 0
        lines = [json.loads(l) for l in responses.read_text().splitlines()]
        assert len(lines) == 4
        # Submissions are gathered concurrently, so duplicates may run
        # before the first result lands in the memo — but nothing fails.
        assert {l["verdict"] for l in lines} <= {"ok", "memoized"}
        doc = json.loads(manifest.read_text())
        assert doc["kind"] == "repro.service_manifest"
        assert doc["stable"] is False
        assert "plan_cache" in doc and "slo" in doc

    def test_unserved_requests_exit_1(self, tmp_path):
        # A medium request with a 1 ms budget is shed by the backlog check
        # (its estimated cost alone exceeds the deadline, and only large
        # requests may fall back to the batch lane).
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps(
                {
                    "kind": "repro.service_request",
                    "ecutwfc": 20.0,
                    "alat": 8.0,
                    "nbnd": 16,
                    "deadline_s": 0.001,
                }
            )
            + "\n"
        )
        responses = tmp_path / "responses.jsonl"
        code = main(["serve", "--requests", str(requests),
                     "--responses", str(responses)])
        assert code == 1
        (line,) = responses.read_text().splitlines()
        assert json.loads(line) == {"verdict": "shed", "reason": "backlog"}

    def test_malformed_line_is_exit_2(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"kind": "repro.service_request", "nbnd": 7}\n')
        assert main(["serve", "--requests", str(requests)]) == 2


class TestLoadgenSoak:
    ARGS = ["loadgen", "--mode", "soak", "--rate", "40", "--duration", "2",
            "--seed", "11"]

    def test_report_shape(self, capsys):
        assert main(list(self.ARGS)) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "soak"
        assert report["virtual_makespan_s"] >= 2.0
        c = report["counts"]
        served = c["ok"] + c["batched"] + c["expired"] + c["failed"] + c["memoized"]
        assert c["accepted"] == served

    def test_manifest_is_byte_reproducible(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.ARGS + ["--manifest", str(a)]) == 0
        assert main(self.ARGS + ["--manifest", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_chaos_plan_flows_through(self, tmp_path, chaos_file, capsys):
        manifest = tmp_path / "soak.json"
        code = main(
            self.ARGS
            + ["--chaos", str(chaos_file), "--manifest", str(manifest)]
        )
        assert code == 0
        capsys.readouterr()
        doc = json.loads(manifest.read_text())
        assert doc["chaos"]["name"] == "cli-test"

    def test_report_file_written(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report_path)]) == 0
        capsys.readouterr()
        assert json.loads(report_path.read_text())["mode"] == "soak"

    def test_bad_mix_rejected(self, capsys):
        code = main(["loadgen", "--mode", "soak", "--mix", "small=banana"])
        assert code == 2


class TestValidatorRouting:
    def test_faults_validate_accepts_chaos_plans(self, chaos_file, capsys):
        assert main(["faults", "validate", str(chaos_file)]) == 0
        assert "chaos" in capsys.readouterr().out

    def test_perf_validate_accepts_service_manifests(self, tmp_path, capsys):
        manifest = tmp_path / "soak.json"
        assert main(
            ["loadgen", "--mode", "soak", "--rate", "30", "--duration", "1",
             "--seed", "2", "--manifest", str(manifest)]
        ) == 0
        capsys.readouterr()
        assert main(["perf", "validate", str(manifest)]) == 0
        assert "valid service manifest" in capsys.readouterr().out

    def test_perf_validate_rejects_tampered_counts(self, tmp_path, capsys):
        manifest = tmp_path / "soak.json"
        main(["loadgen", "--mode", "soak", "--rate", "30", "--duration", "1",
              "--seed", "2", "--manifest", str(manifest)])
        doc = json.loads(manifest.read_text())
        doc["counts"]["ok"] += 1
        manifest.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["perf", "validate", str(manifest)]) != 0
