"""Retry budgets and the circuit-breaker state machine."""

import random

import pytest

from repro.service.retry import BreakerBoard, CircuitBreaker, RetryPolicy


class TestBackoff:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff_s(1, rng) == pytest.approx(0.1)
        assert policy.backoff_s(2, rng) == pytest.approx(0.2)
        assert policy.backoff_s(3, rng) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.25, jitter=0.0)
        assert policy.backoff_s(10, random.Random(0)) == pytest.approx(0.25)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.25)
        rng = random.Random(7)
        for _ in range(100):
            value = policy.backoff_s(1, rng)
            assert 0.1 <= value <= 0.1 * 1.25

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.backoff_s(1, random.Random(3)) for _ in range(5)]
        b = [policy.backoff_s(1, random.Random(3)) for _ in range(5)]
        assert a == b


class TestRetryBudget:
    def test_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.try_spend("small", 1)
        assert policy.try_spend("small", 2)
        assert not policy.try_spend("small", 3)

    def test_bucket_exhaustion_denies_and_counts(self):
        policy = RetryPolicy(budget_cap=2.0)
        assert policy.try_spend("small", 1)
        assert policy.try_spend("small", 1)
        assert not policy.try_spend("small", 1)
        assert policy.budget_denials == {"small": 1}

    def test_buckets_are_per_class(self):
        policy = RetryPolicy(budget_cap=1.0)
        assert policy.try_spend("small", 1)
        assert not policy.try_spend("small", 1)
        assert policy.try_spend("large", 1)  # untouched bucket

    def test_success_refills_to_cap_only(self):
        policy = RetryPolicy(budget_cap=2.0, refill_per_success=0.5)
        policy.try_spend("small", 1)
        for _ in range(10):
            policy.record_success("small")
        assert policy.stats()["tokens"]["small"] == pytest.approx(2.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        brk = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            brk.record_failure(now=0.0)
        assert brk.state == "closed"
        brk.record_failure(now=0.0)
        assert brk.state == "open"
        assert brk.trips == 1

    def test_success_resets_the_streak(self):
        brk = CircuitBreaker(failure_threshold=2)
        brk.record_failure(now=0.0)
        brk.record_success(now=0.1)
        brk.record_failure(now=0.2)
        assert brk.state == "closed"

    def test_open_blocks_until_cooldown(self):
        brk = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        brk.record_failure(now=0.0)
        assert not brk.allow(now=0.5)
        assert brk.state == "open"

    def test_half_open_admits_probe_quota(self):
        brk = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, probe_quota=1)
        brk.record_failure(now=0.0)
        assert brk.allow(now=1.5)  # half-opens, takes the probe slot
        assert brk.state == "half_open"
        assert not brk.allow(now=1.6)  # quota exhausted

    def test_probe_success_closes(self):
        brk = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        brk.record_failure(now=0.0)
        assert brk.allow(now=1.5)
        brk.record_success(now=1.6)
        assert brk.state == "closed"
        assert brk.allow(now=1.7)

    def test_probe_failure_reopens(self):
        brk = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        brk.record_failure(now=0.0)
        assert brk.allow(now=1.5)
        brk.record_failure(now=1.6)
        assert brk.state == "open"
        assert brk.trips == 2
        # A fresh cooldown starts at the re-trip.
        assert not brk.allow(now=2.0)
        assert brk.allow(now=2.7)

    def test_release_probe_frees_the_slot(self):
        brk = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, probe_quota=1)
        brk.record_failure(now=0.0)
        assert brk.allow(now=1.5)
        brk.release_probe()
        assert brk.allow(now=1.6)  # slot available again

    def test_stats_shape(self):
        brk = CircuitBreaker(failure_threshold=1)
        brk.record_failure(now=0.0)
        stats = brk.stats()
        assert stats == {
            "state": "open",
            "trips": 1,
            "consecutive_failures": 1,
            "transitions": 1,
        }

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_quota=0)


class TestBreakerBoard:
    def test_one_breaker_per_class_executor_pair(self):
        board = BreakerBoard()
        a = board.breaker("small", "original")
        b = board.breaker("small", "ompss_perfft")
        assert a is not b
        assert board.breaker("small", "original") is a

    def test_stats_keys_are_sorted_and_stable(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("small", "original")
        board.breaker("large", "ompss_perfft").record_failure(now=0.0)
        stats = board.stats()
        assert list(stats) == ["large/ompss_perfft", "small/original"]
        assert board.total_trips() == 1
