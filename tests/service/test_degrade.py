"""Memoization and the degradation knee."""

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.service.degrade import MemoCache, should_degrade, summarize_result


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache()
        assert cache.get("sha256:a") is None
        cache.put("sha256:a", {"phase_time_s": 1.0})
        assert cache.get("sha256:a") == {"phase_time_s": 1.0}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a: b is now least-recent
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_existing_key(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("a", {"v": 10})  # refresh, not insert
        cache.put("c", {"v": 3})
        assert cache.get("a") == {"v": 10}
        assert cache.get("b") is None

    def test_zero_capacity_never_stores(self):
        cache = MemoCache(max_entries=0)
        cache.put("a", {"v": 1})
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=-1)


class TestDegradeKnee:
    def test_below_knee_stays_full_fidelity(self):
        assert not should_degrade(depth=3, max_depth=8, threshold=0.5)

    def test_at_and_above_knee_degrades(self):
        assert should_degrade(depth=4, max_depth=8, threshold=0.5)
        assert should_degrade(depth=8, max_depth=8, threshold=0.5)

    def test_threshold_extremes(self):
        assert should_degrade(depth=0, max_depth=8, threshold=0.0)
        assert not should_degrade(depth=7, max_depth=8, threshold=1.0)
        assert should_degrade(depth=8, max_depth=8, threshold=1.0)

    def test_degenerate_depth_never_degrades(self):
        assert not should_degrade(depth=5, max_depth=0)


class TestSummarize:
    def test_summary_has_only_deterministic_fields(self):
        cfg = RunConfig(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)
        summary = summarize_result(run_fft_phase(cfg))
        assert set(summary) == {"phase_time_s", "failed", "n_attempts", "fault_failure"}
        assert summary["failed"] is False
        assert summary["n_attempts"] == 1
        assert summary["fault_failure"] is None
        assert summary["phase_time_s"] > 0.0

    def test_summary_is_digest_deterministic(self):
        cfg = RunConfig(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)
        a = summarize_result(run_fft_phase(cfg))
        b = summarize_result(run_fft_phase(cfg))
        assert a == b
