"""Open-loop load generation: seeded schedules, mixes, chaos tagging."""

import pytest

from repro.faults.service import ServiceChaos
from repro.service.loadgen import LoadSpec, generate_arrivals
from repro.service.request import RequestError

FAULTS = {
    "kind": "repro.fault_scenario",
    "name": "drops",
    "seed": 1,
    "links": [{"rank": None, "drop_probability": 0.3}],
    "mpi_max_retries": 6,
    "max_resumes": 1,
}


class TestSpecValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(rate_rps=0.0),
            dict(duration_s=-1.0),
            dict(mix={}),
            dict(mix={"gigantic": 1.0}),
            dict(versions=()),
            dict(repeat_fraction=1.0),
            dict(repeat_fraction=-0.1),
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(RequestError):
            LoadSpec(**bad)

    def test_to_dict_is_json_ready(self):
        import json

        doc = LoadSpec().to_dict()
        json.dumps(doc)  # no tuples or exotic types
        assert doc["versions"] == ["original", "ompss_perfft"]


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = LoadSpec(rate_rps=50.0, duration_s=2.0, seed=3)
        assert generate_arrivals(spec) == generate_arrivals(spec)

    def test_different_seed_different_schedule(self):
        a = generate_arrivals(LoadSpec(seed=3, duration_s=2.0))
        b = generate_arrivals(LoadSpec(seed=4, duration_s=2.0))
        assert a != b

    def test_arrivals_inside_the_window_and_ordered(self):
        spec = LoadSpec(rate_rps=100.0, duration_s=1.5, seed=5)
        arrivals = generate_arrivals(spec)
        times = [t for t, _req in arrivals]
        assert times == sorted(times)
        assert all(0.0 < t < spec.duration_s for t in times)

    def test_rate_roughly_met(self):
        spec = LoadSpec(rate_rps=200.0, duration_s=5.0, seed=6)
        count = len(generate_arrivals(spec))
        assert count == pytest.approx(1000, rel=0.2)

    def test_mix_restricts_grid_classes(self):
        spec = LoadSpec(mix={"large": 1.0}, duration_s=1.0, seed=7)
        classes = {req.grid_class for _t, req in generate_arrivals(spec)}
        assert classes == {"large"}

    def test_versions_drawn_from_spec(self):
        spec = LoadSpec(
            versions=("ompss_steps",), duration_s=1.0, seed=8, repeat_fraction=0.0
        )
        versions = {req.version for _t, req in generate_arrivals(spec)}
        assert versions == {"ompss_steps"}


class TestRepeatsAndChaos:
    def test_repeats_reissue_identical_digests(self):
        spec = LoadSpec(rate_rps=80.0, duration_s=3.0, repeat_fraction=0.5, seed=9)
        digests = [req.digest for _t, req in generate_arrivals(spec)]
        assert len(set(digests)) < len(digests)

    def test_zero_repeat_fraction_never_repeats(self):
        spec = LoadSpec(rate_rps=40.0, duration_s=2.0, repeat_fraction=0.0, seed=10)
        digests = [req.digest for _t, req in generate_arrivals(spec)]
        assert len(set(digests)) == len(digests)

    def test_fault_fraction_tags_requests(self):
        chaos = ServiceChaos(
            name="tagged", seed=1, fault_fraction=0.5, run_faults=FAULTS
        )
        spec = LoadSpec(rate_rps=60.0, duration_s=3.0, repeat_fraction=0.0, seed=11)
        arrivals = generate_arrivals(spec, chaos)
        tagged = [req for _t, req in arrivals if req.faults is not None]
        assert tagged
        assert all(req.faults == FAULTS for req in tagged)
        assert len(tagged) < len(arrivals)  # a fraction, not all

    def test_no_chaos_means_no_faults(self):
        spec = LoadSpec(duration_s=2.0, seed=12)
        assert all(req.faults is None for _t, req in generate_arrivals(spec))

    def test_deadline_propagates_to_every_request(self):
        spec = LoadSpec(duration_s=1.0, deadline_s=0.75, seed=13)
        assert all(
            req.deadline_s == 0.75 for _t, req in generate_arrivals(spec)
        )
