"""ServiceCore policy: the engine-agnostic decision layer on a virtual clock."""

import pytest

from repro.service.request import preset_request
from repro.service.server import Admitted, ServiceConfig, ServiceCore


def core(**kwargs):
    return ServiceCore(ServiceConfig(**kwargs))


def finish_ok(c: ServiceCore, admitted: Admitted, now: float) -> None:
    admitted.attempts = admitted.attempts or 1
    c.finish(admitted, "ok", now, summary={"phase_time_s": 1.0})


class TestSubmitPaths:
    def test_accept_then_ok_conserves(self):
        c = core()
        action, admitted = c.submit(preset_request("small"), now=0.0)
        assert action == "accept"
        finish_ok(c, admitted, now=0.1)
        assert c.counts["submitted"] == 1
        assert c.counts["accepted"] == 1
        assert c.counts["ok"] == 1
        assert c.latencies == [pytest.approx(0.1)]

    def test_memo_hit_short_circuits(self):
        c = core()
        request = preset_request("small")
        _action, admitted = c.submit(request, now=0.0)
        finish_ok(c, admitted, now=0.1)
        action, summary = c.submit(request, now=0.2)
        assert action == "memo"
        assert summary == {"phase_time_s": 1.0}
        assert c.counts["memoized"] == 1
        # Memo hits count as accepted: they were served, not refused.
        assert c.counts["accepted"] == 2

    def test_distinct_seeds_do_not_share_memo(self):
        c = core()
        _action, admitted = c.submit(preset_request("small", seed=1000), now=0.0)
        finish_ok(c, admitted, now=0.1)
        action, _payload = c.submit(preset_request("small", seed=1001), now=0.2)
        assert action == "accept"

    def test_breaker_open_sheds_before_admission(self):
        c = core(breaker_failure_threshold=1, breaker_cooldown_s=10.0)
        request = preset_request("small")
        _action, admitted = c.submit(request, now=0.0)
        admitted.attempts = 1
        c.finish(admitted, "failed", now=0.1)
        action, reason = c.submit(request, now=0.2)
        assert (action, reason) == ("shed", "breaker_open")
        assert c.shed_reasons["breaker_open"] == 1
        # Shed requests never inflate the admission queue.
        assert c.admission.depth == 0

    def test_shed_after_half_open_allow_returns_the_probe(self):
        c = core(breaker_failure_threshold=1, breaker_cooldown_s=1.0)
        request = preset_request("small")
        _action, admitted = c.submit(request, now=0.0)
        admitted.attempts = 1
        c.finish(admitted, "failed", now=0.1)
        # Past cooldown the breaker half-opens; make admission shed so the
        # probe slot must be handed back.
        c.admission.draining = True
        action, reason = c.submit(request, now=2.0)
        assert (action, reason) == ("shed", "shutdown")
        brk = c.breakers.breaker("small", "original")
        assert brk.state == "half_open"
        assert brk.probes_in_flight == 0


class TestVerdictAccounting:
    def test_expiry_does_not_penalize_the_breaker(self):
        c = core(breaker_failure_threshold=1)
        _action, admitted = c.submit(preset_request("small"), now=0.0)
        admitted.attempts = 1
        c.finish(admitted, "expired", now=5.0, cancelled_mid_run=True)
        brk = c.breakers.breaker("small", "original")
        assert brk.state == "closed"
        assert c.counts["expired"] == 1
        assert c.counts["cancelled_mid_run"] == 1
        # Expired requests are not SLO successes: no latency sample.
        assert c.latencies == []

    def test_failure_trips_breaker_at_threshold(self):
        c = core(breaker_failure_threshold=2)
        request = preset_request("small")
        for i in range(2):
            _action, admitted = c.submit(request, now=float(i))
            admitted.attempts = 1
            c.finish(admitted, "failed", now=float(i) + 0.1)
        assert c.breakers.breaker("small", "original").state == "open"

    def test_records_carry_the_final_verdict(self):
        c = core()
        _action, admitted = c.submit(preset_request("medium"), now=1.0)
        admitted.attempts = 2
        admitted.last_cause = "chaos"
        c.finish(admitted, "failed", now=2.5)
        (record,) = c.records
        assert record["verdict"] == "failed"
        assert record["reason"] == "chaos"
        assert record["attempts"] == 2
        assert record["latency_s"] == pytest.approx(1.5)
        assert record["grid_class"] == "medium"


class TestTelemetry:
    def test_gauges_and_counters_coexist_through_a_trip(self):
        # Regression pin: `service.breaker_trips` (labeled counter) and the
        # board-total gauge must use distinct registry names — one name
        # cannot be both kinds, and the clash only surfaced on the first
        # trip of a telemetry-enabled service.
        from repro import telemetry

        tel = telemetry.Telemetry(enabled=True)
        c = ServiceCore(ServiceConfig(breaker_failure_threshold=1), telemetry=tel)
        request = preset_request("small")
        _action, admitted = c.submit(request, now=0.0)
        admitted.attempts = 1
        c.finish(admitted, "failed", now=0.1)  # trips the breaker
        _action, admitted2 = c.submit(preset_request("medium"), now=0.2)
        finish_ok(c, admitted2, now=0.3)
        snapshot = tel.metrics.snapshot()
        assert c.breakers.total_trips() == 1
        assert tel.metrics.total("service.finished") == 2
        assert tel.metrics.gauge("service.breaker_trips_total").value == 1
        assert snapshot


class TestRetryBackoff:
    def test_backoff_denied_when_it_cannot_fit_the_deadline(self):
        c = core()
        _action, admitted = c.submit(preset_request("small", deadline_s=1.0), now=0.0)
        admitted.attempts = 1
        # At now=0.99 the remaining budget cannot fit backoff + a run.
        assert c.retry_backoff(admitted, now=0.99) is None
        assert c.counts["retries"] == 0

    def test_backoff_granted_within_budget(self):
        c = core()
        _action, admitted = c.submit(preset_request("small", deadline_s=30.0), now=0.0)
        admitted.attempts = 1
        backoff = c.retry_backoff(admitted, now=0.1)
        assert backoff is not None and backoff > 0.0
        assert c.counts["retries"] == 1

    def test_batch_lane_has_no_deadline_pressure(self):
        c = core(max_queue_depth=1)
        c.admission.depth = 1  # force the batch path
        action, admitted = c.submit(preset_request("large"), now=0.0)
        assert action == "batch"
        assert admitted.abs_deadline is None
        admitted.attempts = 1
        assert c.retry_backoff(admitted, now=1.0e6) is not None

    def test_attempt_cap_ends_retries(self):
        c = core(retry_max_attempts=2)
        _action, admitted = c.submit(preset_request("small", deadline_s=60.0), now=0.0)
        admitted.attempts = 2
        assert c.retry_backoff(admitted, now=0.1) is None
