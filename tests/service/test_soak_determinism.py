"""The soak engine's reproducibility pin: same (seed, spec, chaos) ⇒
byte-identical stable manifests, with the full resilience surface exercised."""

import json

import pytest

from repro.faults.service import Outage, ServiceChaos
from repro.service.loadgen import LoadSpec, generate_arrivals
from repro.service.manifest import (
    build_service_manifest,
    validate_service_manifest,
)
from repro.service.server import ServiceConfig, SoakEngine

CHAOS = ServiceChaos(
    name="soak-test",
    seed=7,
    failure_rate=0.05,
    class_failure_rates={"large": 0.3},
    outages=(Outage(version="ompss_perfft", start_s=1.0, duration_s=1.2),),
)

SPEC = LoadSpec(rate_rps=60.0, duration_s=4.0, seed=11)


def soak(spec=SPEC, chaos=CHAOS, **config):
    engine = SoakEngine(ServiceConfig(**config), chaos=chaos)
    core = engine.run(generate_arrivals(spec, chaos), drain_at=spec.duration_s)
    return engine, core


def stable_bytes(core, spec):
    manifest = build_service_manifest(core, load=spec.to_dict(), stable=True)
    assert validate_service_manifest(manifest) == []
    return json.dumps(manifest, indent=2, sort_keys=True)


class TestByteIdentity:
    def test_same_inputs_same_bytes(self):
        _engine_a, core_a = soak()
        _engine_b, core_b = soak()
        assert stable_bytes(core_a, SPEC) == stable_bytes(core_b, SPEC)

    def test_different_service_seed_different_decisions(self):
        _e, core_a = soak(seed=0)
        _e, core_b = soak(seed=1)
        # Jitter and chaos draws differ, so the manifests must too.
        assert stable_bytes(core_a, SPEC) != stable_bytes(core_b, SPEC)

    def test_virtual_makespan_is_deterministic(self):
        engine_a, _core = soak()
        engine_b, _core = soak()
        assert engine_a.makespan == engine_b.makespan
        assert engine_a.makespan >= SPEC.duration_s


class TestConservation:
    def test_no_request_vanishes(self):
        _engine, core = soak()
        c = core.counts
        terminal = (
            c["ok"] + c["memoized"] + c["batched"] + c["shed"]
            + c["expired"] + c["failed"]
        )
        assert c["submitted"] == terminal
        assert c["submitted"] == len(core.records)

    def test_zero_accepted_then_lost(self):
        _engine, core = soak()
        c = core.counts
        served = c["ok"] + c["batched"] + c["expired"] + c["failed"] + c["memoized"]
        assert c["accepted"] == served


class TestChaosSurface:
    def test_outage_trips_and_recovers_the_breaker(self):
        _engine, core = soak()
        stats = core.breakers.stats()
        tripped = {k: v for k, v in stats.items() if v["trips"] > 0}
        assert tripped, stats
        assert all(k.endswith("/ompss_perfft") for k in tripped)
        # The outage ends before the drain, so every breaker that tripped
        # must have half-opened and closed again (open -> half_open -> closed).
        for snapshot in tripped.values():
            assert snapshot["state"] == "closed"
            assert snapshot["transitions"] >= 3

    def test_breaker_open_sheds_during_the_window(self):
        _engine, core = soak()
        assert core.shed_reasons["breaker_open"] >= 1

    def test_chaos_failures_drive_retries(self):
        _engine, core = soak()
        assert core.counts["retries"] >= 1

    def test_clean_soak_has_no_failures(self):
        _engine, core = soak(chaos=None)
        assert core.counts["failed"] == 0
        assert core.counts["retries"] == 0
        # Breakers exist per touched (class, executor) but never trip.
        assert all(
            b["state"] == "closed" and b["trips"] == 0
            for b in core.breakers.stats().values()
        )

    def test_memoization_absorbs_repeats(self):
        _engine, core = soak()
        assert core.counts["memoized"] >= 1


class TestManifestEmbedding:
    def test_chaos_plan_embeds_verbatim(self):
        _engine, core = soak()
        manifest = build_service_manifest(core, load=SPEC.to_dict(), stable=True)
        assert manifest["chaos"]["name"] == "soak-test"
        assert manifest["chaos"]["outages"][0]["version"] == "ompss_perfft"
        assert manifest["load"]["rate_rps"] == 60.0

    def test_stable_manifest_excludes_wall_clock_sections(self):
        _engine, core = soak()
        manifest = build_service_manifest(core, load=SPEC.to_dict(), stable=True)
        assert "slo" not in manifest
        assert "plan_cache" not in manifest

    def test_tampered_counts_fail_validation(self):
        _engine, core = soak()
        manifest = build_service_manifest(core, load=SPEC.to_dict(), stable=True)
        manifest["counts"]["ok"] += 1  # lose/duplicate a request
        errors = validate_service_manifest(manifest)
        assert any("submitted" in e for e in errors)

    def test_dropped_record_fails_validation(self):
        _engine, core = soak()
        manifest = build_service_manifest(core, load=SPEC.to_dict(), stable=True)
        manifest["requests"].pop()
        errors = validate_service_manifest(manifest)
        assert any("request records" in e for e in errors)


class TestBackpressure:
    def test_overload_sheds_instead_of_queueing_forever(self):
        spec = LoadSpec(rate_rps=300.0, duration_s=2.0, seed=5)
        _engine, core = soak(
            spec=spec, chaos=None, workers=1, max_queue_depth=4, batch_depth=2
        )
        assert core.counts["shed"] > 0
        reasons = core.shed_reasons
        assert reasons["queue_full"] + reasons["backlog"] == core.counts["shed"]
        assert core.admission.depth_peak <= 4

    def test_pressure_triggers_degraded_fast_path(self):
        spec = LoadSpec(rate_rps=300.0, duration_s=2.0, seed=5)
        _engine, core = soak(spec=spec, chaos=None, workers=1, max_queue_depth=8)
        assert core.counts["degraded"] >= 1

    def test_drain_sheds_late_arrivals_as_shutdown(self):
        spec = LoadSpec(rate_rps=60.0, duration_s=2.0, seed=9)
        arrivals = generate_arrivals(spec)
        engine = SoakEngine(ServiceConfig(), chaos=None)
        core = engine.run(arrivals, drain_at=1.0)  # drain mid-stream
        assert core.shed_reasons["shutdown"] > 0
