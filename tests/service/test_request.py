"""Service requests: validation, the cost model, digests, JSON round-trip."""

import pytest

from repro.service.request import (
    GRID_CLASSES,
    REQUEST_KIND,
    RequestError,
    ServiceRequest,
    cost_units,
    estimate_seconds,
    grid_class_of,
    preset_request,
    request_from_dict,
    request_to_dict,
)


class TestValidation:
    def test_defaults_are_valid(self):
        req = ServiceRequest()
        assert req.grid_class == "small"

    @pytest.mark.parametrize(
        "bad",
        [
            dict(ecutwfc=0.0),
            dict(alat=-1.0),
            dict(nbnd=7),  # odd
            dict(nbnd=0),
            dict(ranks=0),
            dict(taskgroups=0),
            dict(deadline_s=0.0),
            dict(deadline_s=-1.0),
            dict(seed=-1),
            dict(faults="not-a-dict"),
        ],
    )
    def test_bad_fields_rejected(self, bad):
        with pytest.raises(RequestError):
            ServiceRequest(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            ServiceRequest().seed = 1  # type: ignore[misc]


class TestCostModel:
    def test_units_formula(self):
        assert cost_units(12.0, 5.0, 8) == pytest.approx(8 * 125.0 * 12.0**1.5)

    def test_estimate_is_affine(self):
        base = estimate_seconds(0.0)
        assert base == pytest.approx(0.012)
        assert estimate_seconds(1.0e6) == pytest.approx(0.012 + 3.0e-3)

    def test_presets_span_all_classes(self):
        classes = {preset_request(name).grid_class for name in GRID_CLASSES}
        assert classes == {"small", "medium", "large"}

    def test_class_boundaries(self):
        assert grid_class_of(1.0) == "small"
        assert grid_class_of(1.0e5) == "medium"
        assert grid_class_of(2.0e6) == "large"

    def test_unknown_preset_rejected(self):
        with pytest.raises(RequestError):
            preset_request("gigantic")


class TestDigest:
    def test_digest_is_stable(self):
        assert ServiceRequest().digest == ServiceRequest().digest

    def test_digest_excludes_deadline(self):
        # The deadline changes scheduling, never the result.
        a = ServiceRequest(deadline_s=None)
        b = ServiceRequest(deadline_s=0.5)
        assert a.digest == b.digest

    @pytest.mark.parametrize(
        "override",
        [
            dict(seed=2018),
            dict(version="ompss_perfft"),
            dict(nbnd=10),
            dict(ranks=4),
            dict(faults={"kind": "repro.fault_scenario", "os_noise": 0.1}),
        ],
    )
    def test_result_determining_fields_change_digest(self, override):
        assert ServiceRequest(**override).digest != ServiceRequest().digest


class TestRoundTrip:
    def test_to_dict_from_dict(self):
        req = preset_request("medium", version="ompss_perfft", deadline_s=1.5)
        doc = request_to_dict(req)
        assert doc["kind"] == REQUEST_KIND
        assert request_from_dict(doc) == req

    def test_partial_dict_uses_defaults(self):
        req = request_from_dict({"nbnd": 16})
        assert req.nbnd == 16
        assert req.ecutwfc == 12.0

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request field"):
            request_from_dict({"nbands": 16})

    def test_wrong_kind_rejected(self):
        with pytest.raises(RequestError, match="kind"):
            request_from_dict({"kind": "repro.run_manifest"})

    def test_non_dict_rejected(self):
        with pytest.raises(RequestError):
            request_from_dict([1, 2, 3])
