"""Tests for the experiment runners (reduced workloads; the full-workload
claims are asserted by the benchmark harness)."""

import pytest

from repro.experiments import (
    PAPER,
    run_ablation_grainsize,
    run_ablation_ntg,
    run_ablation_scheduler,
    run_ablation_versions,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_resilience,
    run_table1,
    run_table2,
)
from repro.experiments.common import paper_config

QUICK = dict(ecutwfc=20.0, alat=8.0, nbnd=16)


class TestPaperData:
    def test_tables_have_all_rows_and_columns(self):
        for table in (PAPER["table1"], PAPER["table2"]):
            assert len(table) == 9
            for row in table.values():
                assert len(row) == len(PAPER["config_labels"])

    def test_factor_identities_hold_in_paper_data(self):
        """The published numbers satisfy the model's multiplicative structure."""
        t1 = PAPER["table1"]
        for i in range(5):
            pe = t1["-> Load Balance"][i] * t1["-> Communication Efficiency"][i] / 100
            assert pe == pytest.approx(t1["Parallel efficiency"][i], abs=1.5)
            ge = t1["Parallel efficiency"][i] * t1["Computation Scalability"][i] / 100
            assert ge == pytest.approx(t1["Global Efficiency"][i], abs=1.5)


class TestPaperConfig:
    def test_defaults_are_the_paper_workload(self):
        cfg = paper_config(8)
        assert (cfg.ecutwfc, cfg.alat, cfg.nbnd, cfg.taskgroups) == (80.0, 20.0, 128, 8)

    def test_overrides(self):
        cfg = paper_config(2, "ompss_perfft", nbnd=16)
        assert cfg.nbnd == 16
        assert cfg.version == "ompss_perfft"


class TestRunners:
    def test_fig2_series(self):
        report = run_fig2(ranks=(1, 2), **QUICK)
        assert set(report.data["runtime_s"]) == {"1x8", "2x8"}
        assert "Fig. 2" in report.text
        assert report.data["runtime_s"]["1x8"] > 0

    def test_table1_columns(self):
        report = run_table1(ranks=(1, 2), **QUICK)
        cols = report.data["columns"]
        assert set(cols) == {"1x8", "2x8"}
        base = cols["1x8"]
        assert base["Computation Scalability"] == pytest.approx(1.0)
        for label, col in cols.items():
            for row, value in col.items():
                assert 0 < value <= 1.05, (label, row)

    def test_table2_columns(self):
        report = run_table2(ranks=(1, 2), **QUICK)
        assert set(report.data["columns"]) == {"1x8", "2x8"}
        assert "OmpSs" in report.text

    def test_fig3_structure(self):
        report = run_fig3(ranks=2, **QUICK)
        assert report.data["repeating_phases"] == 1  # nbnd/2 / ntg = 8/8
        assert len(report.data["pack_comms"]) == 2
        assert len(report.data["scatter_comms"]) == 8

    def test_fig6_speedups(self):
        report = run_fig6(ranks=(1, 2), **QUICK)
        assert set(report.data["speedups"]) == {"1x8", "2x8"}
        assert report.data["best_original"] in ("1x8", "2x8")

    def test_fig7_metrics(self):
        report = run_fig7(ranks=2, **QUICK)
        for version in ("original", "ompss_perfft"):
            stats = report.data[version]
            assert 0 < stats["mean_ipc"] < 2.0
            assert 0 <= stats["synchrony"] <= 1.0


class TestAblations:
    def test_ntg_sweep(self):
        report = run_ablation_ntg(total_procs=8, ntgs=(1, 2, 4, 8), **QUICK)
        split = report.data["comm_split"]
        assert split["ntg=1"]["pack_s"] == 0.0
        assert split["ntg=8"]["pack_s"] > 0.0

    def test_grainsize_sweep(self):
        report = run_ablation_grainsize(ranks=2, grains=((1, 5), (10, 200)), **QUICK)
        assert len(report.data["runtime_s"]) == 2

    def test_scheduler_sweep(self):
        report = run_ablation_scheduler(ranks=2, policies=("fifo", "lifo"), **QUICK)
        assert set(report.data["runtime_s"]) == {"fifo", "lifo"}

    def test_versions_sweep(self):
        report = run_ablation_versions(ranks=2, **QUICK)
        assert set(report.data["runtime_s"]) == {
            "original",
            "pipelined",
            "ompss_steps",
            "ompss_perfft",
            "ompss_combined",
        }


class TestResilience:
    def test_resilience_report_structure(self):
        report = run_resilience(ranks=2, taskgroups=2, **QUICK)
        data = report.data
        for key in ("baseline_s", "straggler_s", "os_noise_s"):
            assert set(data[key]) == {"original", "ompss_perfft"}
        for v in ("original", "ompss_perfft"):
            assert data["straggler_s"][v] > data["baseline_s"][v]
            assert data["os_noise_s"][v] > data["baseline_s"][v]
            assert data["fault_reports"][v]["straggler"] is not None
        assert "claim" in report.text
        assert isinstance(data["graceful_straggler"], bool)
