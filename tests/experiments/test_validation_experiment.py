"""Tests for the certification-matrix experiment."""

from repro.experiments import run_validation


class TestValidationExperiment:
    def test_quick_matrix_passes(self):
        report = run_validation(ecutwfc=12.0, alat=5.0, nbnd=8)
        assert report.data["passed"]
        assert len(report.data["cases"]) == 10
        assert "PASS" in report.text

    def test_case_labels_cover_all_executors(self):
        report = run_validation(ecutwfc=12.0, alat=5.0, nbnd=8)
        labels = set(report.data["cases"])
        for version in ("original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"):
            assert any(label.startswith(version.split("_")[0]) or version in label for label in labels)
        assert any("nodes" in label for label in labels)
