"""Overhead guard: telemetry must cost (almost) nothing when off.

Two layers of defence:

* the per-event cost of a disabled session — ``current()`` + the ``enabled``
  guard + an early-returning registry call — is bounded against a bare loop
  (microbenchmark, generous factor so CI noise cannot flake it);
* a full run with ``telemetry=False`` (the default) stays within 5 % of the
  cheapest observed baseline run plus an absolute floor, and never loses to
  the telemetry-enabled run of the same configuration.
"""

import time
import timeit

from repro import telemetry
from repro.core import RunConfig, run_fft_phase

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)


class TestDisabledPathIsInert:
    def test_disabled_run_attaches_no_observers(self):
        result = run_fft_phase(RunConfig(version="original", **SMALL))
        assert result.telemetry is None

    def test_explicit_disabled_session_stays_empty(self):
        tel = telemetry.Telemetry(enabled=False)
        result = run_fft_phase(
            RunConfig(version="ompss_perfft", **SMALL), telemetry=tel
        )
        assert result.telemetry is tel
        assert tel.metrics.families() == []
        assert len(tel.spans) == 0
        assert not tel.trace.compute and not tel.trace.mpi and not tel.trace.tasks


class TestDisabledCallSiteCost:
    def test_guarded_event_is_cheap(self):
        # The pattern every instrumented hot path uses when telemetry is off.
        n = 50_000

        def instrumented():
            for _ in range(n):
                tel = telemetry.current()
                if tel.enabled:
                    tel.metrics.count("x", 1.0)

        def bare():
            for _ in range(n):
                pass

        t_inst = min(timeit.repeat(instrumented, number=1, repeat=5))
        t_bare = min(timeit.repeat(bare, number=1, repeat=5))
        per_event = (t_inst - t_bare) / n
        # ~100 ns in practice; 5 us is the flake-proof ceiling.  A quick run
        # has O(10^3) instrumented events, so even the ceiling stays far
        # below 5 % of its multi-second wall time.
        assert per_event < 5e-6, f"disabled guard costs {per_event * 1e9:.0f} ns/event"

    def test_disabled_registry_call_is_noop(self):
        reg = telemetry.MetricsRegistry(enabled=False)
        for _ in range(1000):
            reg.count("hot.path", 1.0, label="x")
        assert reg.families() == []


class TestRunLevelOverhead:
    def test_disabled_run_within_tolerance_of_baseline(self):
        # Wall-time guard for the ISSUE's 5 % budget.  The baseline is the
        # same instrumented build with telemetry off (the process default, as
        # shipped); min-of-N absorbs scheduler noise and the absolute floor
        # keeps sub-second timings from flaking.
        config = RunConfig(version="original", **SMALL)

        def wall(cfg, **kwargs):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run_fft_phase(cfg, **kwargs)
                best = min(best, time.perf_counter() - t0)
            return best

        run_fft_phase(config)  # warm caches (plans, JIT-free but allocs)
        t_plain = wall(config)
        t_disabled = wall(config, telemetry=telemetry.Telemetry(enabled=False))
        assert t_disabled <= max(t_plain * 1.05, t_plain + 0.05), (
            f"disabled telemetry run {t_disabled:.3f}s vs baseline {t_plain:.3f}s"
        )

    def test_disabled_run_not_slower_than_enabled(self):
        config = RunConfig(version="original", **SMALL)
        run_fft_phase(config)  # warm caches

        def wall(**kwargs):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run_fft_phase(config, **kwargs)
                best = min(best, time.perf_counter() - t0)
            return best

        t_disabled = wall()
        t_enabled = wall(telemetry=telemetry.Telemetry(enabled=True))
        # Enabled does strictly more work; disabled must not lose by more
        # than timing noise.
        assert t_disabled <= max(t_enabled * 1.10, t_enabled + 0.05), (
            f"disabled {t_disabled:.3f}s slower than enabled {t_enabled:.3f}s"
        )
