"""Session mechanics: current()/install()/session() and the disabled default."""

import pytest

from repro import telemetry


class TestSession:
    def test_default_is_disabled_singleton(self):
        tel = telemetry.current()
        assert not tel.enabled
        assert tel is telemetry.current()

    def test_disabled_default_refuses_writes(self):
        tel = telemetry.current()
        tel.metrics.count("leak", 1.0)
        tel.spans.add("t", "leak", "c", 0.0, 1.0)
        assert tel.metrics.families() == []
        assert len(tel.spans) == 0

    def test_install_and_restore(self):
        mine = telemetry.Telemetry(enabled=True)
        previous = telemetry.install(mine)
        try:
            assert telemetry.current() is mine
        finally:
            telemetry.install(previous)
        assert telemetry.current() is previous

    def test_install_none_restores_disabled_default(self):
        mine = telemetry.Telemetry(enabled=True)
        telemetry.install(mine)
        telemetry.install(None)
        assert not telemetry.current().enabled

    def test_session_context_manager(self):
        before = telemetry.current()
        with telemetry.session() as tel:
            assert tel.enabled
            assert telemetry.current() is tel
            tel.metrics.count("x", 2.0)
        assert telemetry.current() is before
        assert tel.metrics.total("x") == 2.0

    def test_session_restores_on_exception(self):
        before = telemetry.current()
        with pytest.raises(RuntimeError):
            with telemetry.session():
                raise RuntimeError("boom")
        assert telemetry.current() is before

    def test_sessions_nest(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.current() is inner
            assert telemetry.current() is outer

    def test_span_shorthand(self):
        tel = telemetry.Telemetry(enabled=True)
        clock = [1.0]
        with tel.span("driver", "run", "run", lambda: clock[0]):
            clock[0] = 2.0
        (s,) = tel.spans.closed()
        assert (s.name, s.t_begin, s.t_end) == ("run", 1.0, 2.0)
