"""Acceptance: telemetry end-to-end at the paper's 8x8 configuration.

Runs exec_original and exec_perfft (quick workload) with telemetry on and
checks the whole chain: span hierarchy, metrics consistency, Chrome-trace
structure (per-hw-thread tracks, MPI flow events), manifests whose POP
factors match ``factors_from_run``, and the ``perf diff`` / ``perf check``
behaviour on those manifests — the paper's runtime and main-phase-IPC
deltas must show up in the diff.
"""

import copy
import dataclasses
import json

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.perf import (
    diff_manifests,
    factors_from_run,
    format_manifest_diff,
    ideal_network,
    manifest_regressions,
)
from repro.telemetry.chrometrace import chrome_trace_events
from repro.telemetry.manifest import build_manifest, validate_manifest

QUICK = dict(ecutwfc=30.0, alat=10.0, nbnd=32)


def _run(version):
    config = RunConfig(ranks=8, taskgroups=8, version=version, telemetry=True, **QUICK)
    result = run_fft_phase(config)
    ideal = run_fft_phase(
        dataclasses.replace(config, telemetry=False), knl=ideal_network()
    )
    factors = factors_from_run(result, ideal_time=ideal.phase_time)
    manifest = build_manifest(
        result,
        wall_time_s=1.0,
        factors=factors,
        ideal_time_s=ideal.phase_time,
        created="2026-01-01T00:00:00",
    )
    return result, factors, manifest


@pytest.fixture(scope="module")
def original():
    return _run("original")


@pytest.fixture(scope="module")
def perfft():
    return _run("ompss_perfft")


class TestSpanHierarchy:
    def test_driver_run_span_covers_phase(self, original):
        result, _factors, _manifest = original
        (run_span,) = result.telemetry.spans.of_track("driver")
        assert run_span.name == "run"
        assert run_span.t_begin == 0.0
        assert run_span.t_end == pytest.approx(result.phase_time)
        assert run_span.args["version"] == "original"

    def test_original_executor_and_iteration_spans(self, original):
        result, _factors, _manifest = original
        spans = result.telemetry.spans
        for rank in range(result.config.n_mpi_ranks):
            of_rank = spans.of_track((rank, 0))
            execs = [s for s in of_rank if s.category == "executor"]
            assert [s.name for s in execs] == ["exec_original"]
            iters = [s for s in of_rank if s.category == "iteration"]
            assert len(iters) == result.config.n_iterations
            # Iterations nest inside the executor span.
            for it in iters:
                assert execs[0].t_begin <= it.t_begin <= it.t_end <= execs[0].t_end

    def test_perfft_submit_and_taskwait_spans(self, perfft):
        result, _factors, _manifest = perfft
        spans = result.telemetry.spans
        for rank in range(result.config.n_mpi_ranks):
            names = {s.name for s in spans.of_track((rank, 0))}
            assert {"exec_perfft", "submit", "taskwait"} <= names


class TestMetricsConsistency:
    def test_mpi_counters_match_trace(self, original):
        result, _factors, _manifest = original
        tel = result.telemetry
        assert tel.metrics.total("mpi.calls") == len(tel.trace.mpi)
        assert tel.metrics.total("mpi.bytes_sent") == pytest.approx(
            sum(r.bytes_sent for r in tel.trace.mpi)
        )

    def test_run_level_gauges(self, original):
        result, _factors, _manifest = original
        m = result.telemetry.metrics
        assert m.value("run.phase_seconds") == pytest.approx(result.phase_time)
        assert m.value("machine.average_ipc") == pytest.approx(result.average_ipc)
        assert m.value("sim.events_dispatched") > 0

    def test_task_metrics_for_task_runtime(self, perfft):
        result, _factors, _manifest = perfft
        m = result.telemetry.metrics
        assert m.total("ompss.tasks_submitted") > 0
        assert m.total("ompss.tasks_submitted") == m.total("ompss.tasks_completed")
        assert result.telemetry.queue_samples, "task runtime must sample queue depth"


class TestChromeTraceAcceptance:
    def test_per_hw_thread_tracks_and_flows(self, perfft):
        result, _factors, _manifest = perfft
        tel = result.telemetry
        events = chrome_trace_events(
            tel.trace, tel.spans, result.cpu.frequency_hz, tel.queue_samples
        )
        json.dumps(events)  # loadable by Perfetto means serialisable JSON
        thread_names = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        hw_tracks = [n for n in thread_names if n.startswith("rank ")]
        assert len(hw_tracks) >= result.config.total_streams
        kinds = {e["ph"] for e in events}
        assert {"s", "f"} <= kinds, "MPI flow events missing"
        assert "C" in kinds, "task-queue counter track missing"
        # Every slice lands on a named track.
        named = {
            e["tid"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert all(e["tid"] in named for e in events if e["ph"] == "X")


class TestManifestAcceptance:
    def test_manifests_validate(self, original, perfft):
        for _result, _factors, manifest in (original, perfft):
            assert validate_manifest(manifest) == []

    def test_pop_factors_match_factors_from_run(self, original, perfft):
        for _result, factors, manifest in (original, perfft):
            pop = manifest["pop"]
            for field in dataclasses.fields(factors):
                assert pop[field.name] == pytest.approx(
                    getattr(factors, field.name)
                ), field.name
            assert pop["ideal_time_s"] is not None

    def test_main_phase_ipc_recorded(self, original, perfft):
        for _result, _factors, manifest in (original, perfft):
            assert 0.3 < manifest["phases"]["fft_xy"]["ipc"] < 1.5


class TestDiffAcceptance:
    def test_perfft_is_faster_with_higher_main_phase_ipc(self, original, perfft):
        _res_a, _f_a, manifest_a = original
        _res_b, _f_b, manifest_b = perfft
        diff = diff_manifests(manifest_a, manifest_b)
        # The paper's headline: the per-FFT task version is faster and lifts
        # the main phase's IPC (0.75 -> 0.85 on real KNL hardware).
        assert diff.runtime_relative < 0
        assert (
            manifest_b["phases"]["fft_xy"]["ipc"]
            > manifest_a["phases"]["fft_xy"]["ipc"]
        )

    def test_format_manifest_diff_reports_the_delta(self, original, perfft):
        _res_a, _f_a, manifest_a = original
        _res_b, _f_b, manifest_b = perfft
        text = format_manifest_diff(diff_manifests(manifest_a, manifest_b))
        assert manifest_a["config"]["label"] in text
        assert manifest_b["config"]["label"] in text
        assert "fft_xy" in text
        assert "parallel_efficiency" in text

    def test_check_passes_against_itself(self, original):
        _result, _factors, manifest = original
        assert manifest_regressions(manifest, manifest) == []

    def test_check_flags_slowdown(self, original):
        _result, _factors, manifest = original
        slower = copy.deepcopy(manifest)
        slower["timing"]["phase_time_s"] *= 1.2
        for entry in slower["phases"].values():
            entry["time_s"] *= 1.2
        violations = manifest_regressions(manifest, slower, threshold=0.05)
        assert violations
        assert any("phase time" in v or "runtime" in v for v in violations)

    def test_check_tolerates_noise_below_threshold(self, original):
        _result, _factors, manifest = original
        near = copy.deepcopy(manifest)
        near["timing"]["phase_time_s"] *= 1.01
        assert manifest_regressions(manifest, near, threshold=0.05) == []
