"""Unit tests for the span log."""

import pytest

from repro.telemetry.spans import SpanLog


class TestSpanLog:
    def test_begin_end(self):
        log = SpanLog()
        s = log.begin((0, 0), "exec", "executor", 1.0, bands=[0, 1])
        assert s is not None and s.t_end is None and s.duration == 0.0
        log.end(s, 3.5)
        assert s.duration == pytest.approx(2.5)
        assert s.args == {"bands": [0, 1]}

    def test_add_complete_span(self):
        log = SpanLog()
        log.add("driver", "run", "run", 0.0, 2.0, label="x")
        (s,) = log.closed()
        assert (s.name, s.t_begin, s.t_end) == ("run", 0.0, 2.0)

    def test_add_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends"):
            SpanLog().add("t", "bad", "c", 2.0, 1.0)

    def test_double_close_rejected(self):
        log = SpanLog()
        s = log.begin("t", "a", "c", 0.0)
        log.end(s, 1.0)
        with pytest.raises(ValueError, match="already closed"):
            log.end(s, 2.0)

    def test_close_before_begin_rejected(self):
        log = SpanLog()
        s = log.begin("t", "a", "c", 5.0)
        with pytest.raises(ValueError, match="before its begin"):
            log.end(s, 4.0)

    def test_disabled_log_is_inert(self):
        log = SpanLog(enabled=False)
        assert log.begin("t", "a", "c", 0.0) is None
        log.end(None, 1.0)  # no-op
        log.add("t", "a", "c", 0.0, 1.0)
        with log.span("t", "a", "c", lambda: 0.0) as handle:
            assert handle is None
        assert len(log) == 0

    def test_context_manager_samples_clock(self):
        log = SpanLog()
        t = [1.0]
        with log.span((0, 0), "it", "iteration", lambda: t[0]):
            t[0] = 4.0
        (s,) = log.closed()
        assert (s.t_begin, s.t_end) == (1.0, 4.0)

    def test_context_manager_closes_on_exception(self):
        log = SpanLog()
        t = [0.0]
        with pytest.raises(RuntimeError):
            with log.span("t", "a", "c", lambda: t[0]):
                t[0] = 1.0
                raise RuntimeError("boom")
        (s,) = log.closed()
        assert s.t_end == 1.0

    def test_context_manager_across_generator_yields(self):
        # Executors are generator programs; the with block lives in the
        # generator frame, so the span closes when the frame resumes past it.
        log = SpanLog()
        clock = [0.0]

        def program():
            with log.span((0, 0), "exec", "executor", lambda: clock[0]):
                yield "a"
                yield "b"

        gen = program()
        next(gen)
        clock[0] = 2.0
        next(gen)
        clock[0] = 5.0
        with pytest.raises(StopIteration):
            next(gen)
        (s,) = log.closed()
        assert (s.t_begin, s.t_end) == (0.0, 5.0)

    def test_queries(self):
        log = SpanLog()
        log.add((1, 0), "inner", "c", 1.0, 2.0)
        log.add((1, 0), "outer", "c", 0.0, 3.0)
        log.add("driver", "run", "run", 0.0, 3.0)
        open_span = log.begin((2, 0), "open", "c", 0.0)
        assert open_span is not None

        assert len(log) == 4
        assert len(log.all()) == 4
        assert len(log.closed()) == 3
        assert set(map(repr, log.tracks())) == {repr((1, 0)), repr((2, 0)), repr("driver")}
        names = [s.name for s in log.of_track((1, 0))]
        assert names == ["outer", "inner"]  # outermost first
