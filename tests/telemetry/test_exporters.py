"""The exporter registry: every format from one completed run."""

import json

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.telemetry.exporters import EXPORTERS, export_run
from repro.telemetry.manifest import load_manifest

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)


@pytest.fixture(scope="module")
def result():
    return run_fft_phase(RunConfig(version="original", telemetry=True, **SMALL))


class TestExportRun:
    def test_registry_contents(self):
        assert set(EXPORTERS) == {"chrome", "prometheus", "prv", "manifest"}

    def test_chrome(self, result, tmp_path):
        path = export_run(result, "chrome", tmp_path / "trace")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["label"] == result.config.label()
        kinds = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X"} <= kinds

    def test_prometheus(self, result, tmp_path):
        path = export_run(result, "prometheus", tmp_path / "metrics")
        assert path.suffix == ".prom"
        text = path.read_text()
        assert "# TYPE mpi_calls counter" in text
        assert "machine_average_ipc" in text

    def test_prv(self, result, tmp_path):
        from repro.perf.paraver import read_prv

        path = export_run(result, "prv", tmp_path / "run")
        assert path.suffix == ".prv"
        assert path.with_suffix(".pcf").exists()
        assert path.with_suffix(".row").exists()
        parsed = read_prv(path)
        assert len(parsed["states"]) == (
            len(result.telemetry.trace.compute) + len(result.telemetry.trace.mpi)
        )

    def test_manifest(self, result, tmp_path):
        path = export_run(result, "manifest", tmp_path / "run.json")
        manifest = load_manifest(path)
        assert manifest["config"]["label"] == result.config.label()

    def test_unknown_format_rejected(self, result, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            export_run(result, "xml", tmp_path / "x")

    def test_telemetry_required(self, tmp_path):
        plain = run_fft_phase(RunConfig(version="original", **SMALL))
        assert plain.telemetry is None
        with pytest.raises(ValueError, match="telemetry-enabled"):
            export_run(plain, "chrome", tmp_path / "x")
