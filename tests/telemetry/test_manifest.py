"""Run-manifest build / validate / write / load."""

import copy
import json

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.telemetry.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)


@pytest.fixture(scope="module")
def result():
    return run_fft_phase(RunConfig(version="original", telemetry=True, **SMALL))


@pytest.fixture(scope="module")
def manifest(result):
    return build_manifest(result, wall_time_s=0.5, created="2026-01-01T00:00:00")


class TestBuildManifest:
    def test_identity_and_config(self, result, manifest):
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        cfg = manifest["config"]
        assert cfg["version"] == "original"
        assert cfg["ranks"] == 2 and cfg["taskgroups"] == 2
        assert cfg["label"] == result.config.label()
        assert cfg["n_mpi_ranks"] == result.config.n_mpi_ranks
        assert cfg["total_streams"] == result.config.total_streams

    def test_timing(self, result, manifest):
        assert manifest["timing"]["phase_time_s"] == pytest.approx(result.phase_time)
        assert manifest["timing"]["wall_time_s"] == 0.5
        assert manifest["timing"]["sim_events"] > 0

    def test_phase_aggregates(self, result, manifest):
        phases = manifest["phases"]
        assert "fft_xy" in phases and "fft_z" in phases
        for entry in phases.values():
            assert entry["time_s"] > 0
            assert entry["ipc"] > 0
        # IPC is consistent with the aggregate it is derived from.
        freq = result.cpu.frequency_hz
        for entry in phases.values():
            assert entry["ipc"] == pytest.approx(
                entry["instructions"] / (entry["time_s"] * freq)
            )

    def test_mpi_aggregates(self, result, manifest):
        mpi = manifest["mpi"]
        assert mpi, "telemetry run must produce MPI aggregates"
        total_calls = sum(entry["calls"] for entry in mpi.values())
        assert total_calls == len(result.telemetry.trace.mpi)
        # Layer names have trailing digits stripped (pack0, pack1 -> pack).
        assert all(not layer[-1].isdigit() for layer in mpi)

    def test_metrics_snapshot_embedded(self, result, manifest):
        assert manifest["metrics"] == result.telemetry.metrics.snapshot()
        assert "mpi.calls" in manifest["metrics"]

    def test_average_ipc(self, result, manifest):
        assert manifest["average_ipc"] == pytest.approx(result.average_ipc)

    def test_no_pop_without_factors(self, manifest):
        assert "pop" not in manifest

    def test_json_serialisable(self, manifest):
        json.dumps(manifest)


class TestValidateManifest:
    def test_valid(self, manifest):
        assert validate_manifest(manifest) == []

    def test_not_a_dict(self):
        assert validate_manifest([1, 2]) == ["manifest must be a JSON object"]

    def test_missing_required_field(self, manifest):
        broken = copy.deepcopy(manifest)
        del broken["timing"]
        errors = validate_manifest(broken)
        assert any("timing" in e for e in errors)

    def test_wrong_type(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["config"]["ranks"] = "eight"
        errors = validate_manifest(broken)
        assert any("config.ranks" in e for e in errors)

    def test_wrong_kind(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["kind"] = "something.else"
        assert any("kind" in e for e in validate_manifest(broken))

    def test_newer_schema_rejected(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        assert any("newer" in e for e in validate_manifest(broken))

    def test_negative_phase_time_rejected(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["timing"]["phase_time_s"] = -1.0
        assert any("phase_time_s" in e for e in validate_manifest(broken))

    def test_phase_entry_without_time_rejected(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["phases"]["fft_xy"] = {"ipc": 0.8}
        assert any("fft_xy" in e for e in validate_manifest(broken))


class TestWriteLoad:
    def test_roundtrip(self, manifest, tmp_path):
        path = write_manifest(tmp_path / "run", manifest)
        assert path.suffix == ".json"
        assert load_manifest(path) == manifest

    def test_write_rejects_invalid(self, manifest, tmp_path):
        broken = copy.deepcopy(manifest)
        del broken["phases"]
        with pytest.raises(ManifestError):
            write_manifest(tmp_path / "bad.json", broken)

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_schema_mirror_stays_in_sync(self, manifest):
        # docs/run_manifest.schema.json documents the same rules the code
        # enforces: every required field the code checks is required there.
        import pathlib

        schema = json.loads(
            (pathlib.Path(__file__).parents[2] / "docs/run_manifest.schema.json")
            .read_text()
        )
        from repro.telemetry.manifest import _RULES

        required_in_code = {
            dotted for dotted, _types, required in _RULES
            if required and "." not in dotted
        }
        assert required_in_code <= set(schema["required"])
        assert schema["properties"]["kind"]["const"] == MANIFEST_KIND
