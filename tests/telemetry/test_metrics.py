"""Unit tests for the metrics registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_set_max_keeps_watermark(self):
        g = Gauge()
        g.set_max(3.0)
        g.set_max(1.0)
        assert g.value == 3.0


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.total == 4
        assert h.sum == pytest.approx(55.6)

    def test_cumulative_is_monotone(self):
        h = Histogram()
        for v in (1e-5, 1e-3, 0.5, 100.0):
            h.observe(v)
        cum = h.cumulative()
        assert cum == sorted(cum)
        assert cum[-1] == 4
        assert len(cum) == len(DEFAULT_BUCKETS) + 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_counter_series_by_labels(self):
        reg = MetricsRegistry()
        reg.count("mpi.calls", 1.0, call="alltoall", comm="scatter")
        reg.count("mpi.calls", 1.0, call="alltoall", comm="scatter")
        reg.count("mpi.calls", 1.0, call="barrier", comm="world")
        assert reg.value("mpi.calls", call="alltoall", comm="scatter") == 2.0
        assert reg.value("mpi.calls", call="barrier", comm="world") == 1.0
        assert reg.total("mpi.calls") == 3.0

    def test_label_named_name_is_legal(self):
        # The one-shot methods take their own parameters positionally, so a
        # label called "name" (the OmpSs task-kind label) must not collide.
        reg = MetricsRegistry()
        reg.count("ompss.tasks_submitted", 1.0, name="fft_band")
        reg.observe("ompss.task_seconds", 0.25, name="fft_band")
        reg.set_gauge("demo.gauge", 2.0, name="x")
        assert reg.value("ompss.tasks_submitted", name="fft_band") == 1.0
        assert reg.value("demo.gauge", name="x") == 2.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.count("a.b", 1.0)
        with pytest.raises(ValueError, match="already registered"):
            reg.set_gauge("a.b", 1.0)

    def test_disabled_registry_drops_everything(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a", 1.0)
        reg.set_gauge("b", 2.0)
        reg.max_gauge("c", 3.0)
        reg.observe("d", 4.0)
        assert reg.families() == []
        assert reg.total("a") == 0.0
        assert reg.value("b") == 0.0

    def test_value_of_missing_series_is_zero(self):
        reg = MetricsRegistry()
        assert reg.value("no.such") == 0.0
        reg.count("exists", 1.0, k="a")
        assert reg.value("exists", k="b") == 0.0

    def test_value_on_histogram_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        with pytest.raises(ValueError, match="histogram"):
            reg.value("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.count("mpi.calls", 2.0, call="bcast")
        reg.set_gauge("machine.average_ipc", 0.8)
        reg.observe("mpi.call_seconds", 1e-4, call="bcast")
        snap = reg.snapshot()
        assert set(snap) == {"mpi.calls", "machine.average_ipc", "mpi.call_seconds"}
        assert snap["mpi.calls"]["kind"] == "counter"
        assert snap["mpi.calls"]["series"] == [
            {"labels": {"call": "bcast"}, "value": 2.0}
        ]
        hist = snap["mpi.call_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(1e-4)
        assert len(hist["counts"]) == len(hist["buckets"]) + 1

    def test_snapshot_is_json_friendly(self):
        import json

        reg = MetricsRegistry()
        reg.count("x.y", 1.0, a="1")
        reg.observe("z", 0.5)
        json.dumps(reg.snapshot())  # must not raise

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.count("mpi.calls", 3.0, call="alltoall")
        reg.set_gauge("machine.average_ipc", 0.75)
        reg.observe("mpi.call_seconds", 2e-6, call="alltoall")
        text = reg.to_prometheus()
        assert "# TYPE mpi_calls counter" in text
        assert 'mpi_calls{call="alltoall"} 3' in text
        assert "# TYPE machine_average_ipc gauge" in text
        assert "machine_average_ipc 0.75" in text
        assert "# TYPE mpi_call_seconds histogram" in text
        assert 'mpi_call_seconds_bucket{call="alltoall",le="+Inf"} 1' in text
        assert 'mpi_call_seconds_count{call="alltoall"} 1' in text
