"""Chrome-trace (Perfetto) export: structure of the traceEvents list."""

import json

from repro.machine.cpu import ComputeRecord
from repro.machine.topology import NodeTopology
from repro.mpisim.world import MpiRecord
from repro.telemetry.chrometrace import chrome_trace_events, write_chrome_trace
from repro.telemetry.spans import SpanLog
from repro.telemetry.trace import Trace

TOPO = NodeTopology(n_cores=8, threads_per_core=2, frequency_hz=1e9)


def _compute(stream, phase, start, end, instructions=1000):
    return ComputeRecord(
        stream=stream,
        thread=TOPO.hw_thread(stream[0], stream[1]),
        phase=phase,
        instructions=instructions,
        start=start,
        end=end,
    )


def _mpi(stream, call, t0, t1, **kw):
    defaults = dict(
        comm_id=0, comm_name="world", bytes_sent=64.0, sync_time=0.0
    )
    defaults.update(kw)
    return MpiRecord(stream=stream, call=call, t_begin=t0, t_end=t1, **defaults)


def small_trace() -> Trace:
    trace = Trace()
    trace.compute.append(_compute((0, 0), "fft_z", 0.0, 1e-3))
    trace.compute.append(_compute((1, 0), "fft_xy", 0.0, 2e-3))
    # A 2-member collective: same comm/call/end time -> one flow.
    trace.mpi.append(_mpi((0, 0), "alltoall", 1e-3, 3e-3))
    trace.mpi.append(_mpi((1, 0), "alltoall", 2e-3, 3e-3))
    # A matched p2p pair -> its own flow.
    trace.mpi.append(_mpi((0, 0), "send", 3e-3, 3.5e-3, src=0, dst=1, tag=7))
    trace.mpi.append(_mpi((1, 0), "recv", 3e-3, 4e-3, src=0, dst=1, tag=7))
    return trace


def by_ph(events, ph):
    return [e for e in events if e["ph"] == ph]


class TestChromeTraceEvents:
    def test_metadata_names_every_track(self):
        trace = small_trace()
        events = chrome_trace_events(trace)
        names = [
            e["args"]["name"] for e in by_ph(events, "M") if e["name"] == "thread_name"
        ]
        assert "rank 0 / hw thread 0" in names
        assert "rank 1 / hw thread 0" in names
        assert "driver" in names
        # One process_name metadata event.
        assert sum(1 for e in by_ph(events, "M") if e["name"] == "process_name") == 1

    def test_complete_events_cover_records(self):
        trace = small_trace()
        events = chrome_trace_events(trace, frequency_hz=1e9)
        xs = by_ph(events, "X")
        assert len(xs) == len(trace.compute) + len(trace.mpi)
        compute = [e for e in xs if e["cat"] == "compute"]
        assert {e["name"] for e in compute} == {"fft_z", "fft_xy"}
        assert all("ipc" in e["args"] for e in compute)
        mpi = [e for e in xs if e["cat"] == "mpi"]
        assert {e["name"] for e in mpi} == {"MPI_alltoall", "MPI_send", "MPI_recv"}
        # Timestamps are microseconds of simulated time.
        fft_z = next(e for e in compute if e["name"] == "fft_z")
        assert fft_z["ts"] == 0.0
        assert fft_z["dur"] == 1e-3 * 1e6

    def test_flow_events_for_collective_and_p2p(self):
        events = chrome_trace_events(small_trace())
        starts = by_ph(events, "s")
        finishes = by_ph(events, "f")
        assert len(starts) == 2  # one collective + one p2p pair
        assert len(finishes) == 2
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        assert all(e["bp"] == "e" for e in finishes)
        # Flows bind mid-slice so the arrows attach to their X events.
        for e in starts + finishes:
            assert e["cat"] == "mpi-flow"

    def test_span_tracks_get_tids_even_without_records(self):
        # Executor spans live on (rank, 0); a span-only track (e.g. a rank
        # whose stream produced no compute records) must still resolve.
        trace = Trace()
        trace.compute.append(_compute((0, 0), "fft_z", 0.0, 1e-3))
        spans = SpanLog()
        spans.add((5, 0), "exec_original", "executor", 0.0, 1e-3)
        spans.add("driver", "run", "run", 0.0, 1e-3)
        events = chrome_trace_events(trace, spans)
        xs = by_ph(events, "X")
        assert {e["name"] for e in xs} == {"fft_z", "exec_original", "run"}
        named_tids = {
            e["tid"] for e in by_ph(events, "M") if e["name"] == "thread_name"
        }
        assert all(e["tid"] in named_tids for e in xs)

    def test_counter_events_from_queue_samples(self):
        events = chrome_trace_events(
            small_trace(), queue_depth_samples=[(1e-3, 0, 3), (2e-3, 0, 1)]
        )
        counters = by_ph(events, "C")
        assert [e["args"]["depth"] for e in counters] == [3, 1]
        assert all(e["name"] == "task queue rank 0" for e in counters)

    def test_events_sorted_by_timestamp(self):
        events = chrome_trace_events(small_trace())
        ts = [e.get("ts", -1.0) for e in events]
        assert ts == sorted(ts)


class TestWriteChromeTrace:
    def test_writes_loadable_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace", small_trace(), label="t")
        assert path.suffix == ".json"
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["label"] == "t"
        assert doc["displayTimeUnit"] == "ms"
