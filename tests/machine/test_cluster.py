"""Tests for the multi-node cluster topology and per-node contention."""

import pytest

from repro.machine import NodeTopology, PhaseProfile
from repro.machine.cluster import ClusterTopology
from repro.machine.contention import BandwidthContentionAllocator
from repro.simkit import Simulator
from repro.simkit.fluid import FluidTask

FREQ = 1.0e9


@pytest.fixture()
def node():
    return NodeTopology(n_cores=4, threads_per_core=2, frequency_hz=FREQ)


class TestClusterTopology:
    def test_invalid_node_count(self, node):
        with pytest.raises(ValueError):
            ClusterTopology(node, 0)

    def test_capacity(self, node):
        cluster = ClusterTopology(node, 3)
        assert cluster.n_hw_threads == 24
        assert cluster.frequency_hz == FREQ

    def test_block_placement_is_node_major(self, node):
        cluster = ClusterTopology(node, 2)
        placement = cluster.place(8)
        assert [t.node for t in placement] == [0, 0, 0, 0, 1, 1, 1, 1]
        # Within each node: spread across cores.
        assert [t.core for t in placement[:4]] == [0, 1, 2, 3]
        assert [t.core for t in placement[4:]] == [0, 1, 2, 3]

    def test_uneven_stream_count(self, node):
        cluster = ClusterTopology(node, 2)
        placement = cluster.place(6)
        assert [t.node for t in placement] == [0, 0, 0, 1, 1, 1]

    def test_grouped_placement_pairs_within_node(self, node):
        cluster = ClusterTopology(node, 2)
        placement = cluster.place_grouped(8, group=2)
        assert [t.node for t in placement] == [0] * 4 + [1] * 4
        assert (placement[0].core, placement[1].core) == (0, 0)
        assert placement[0].slot != placement[1].slot

    def test_oversubscription_rejected(self, node):
        cluster = ClusterTopology(node, 2)
        with pytest.raises(ValueError):
            cluster.place(17)

    def test_no_duplicate_threads_across_nodes(self, node):
        cluster = ClusterTopology(node, 2)
        placement = cluster.place(16)  # would collide without node identity
        assert len({(t.node, t.core, t.slot) for t in placement}) == 16


class TestPerNodeContention:
    def test_nodes_are_independent_bandwidth_domains(self, node):
        """4 heavy tasks on one node are throttled; 2+2 over two nodes not."""
        alloc = BandwidthContentionAllocator(FREQ, 4.0e9)
        heavy = PhaseProfile("heavy", ipc0=2.0, bytes_per_instr=1.0)  # 2 GB/s each
        sim = Simulator()
        cluster = ClusterTopology(node, 2)

        def rates(nodes_of_tasks):
            tasks = []
            for i, n in enumerate(nodes_of_tasks):
                t = cluster.place(8)[n * 4 + (i % 4)]
                tasks.append(FluidTask(sim, 1e9, meta={"profile": heavy, "thread": t}))
            return alloc.allocate(tasks)

        same_node = rates([0, 0, 0, 0])
        split = rates([0, 0, 1, 1])
        assert same_node[0] == pytest.approx(1.0e9)  # 4 GB/s / 4 / 1 B/instr
        assert split[0] == pytest.approx(2.0e9)  # unthrottled per node

    def test_hyperthread_sharing_stays_per_node_core(self, node):
        """Same (core, slot) on different nodes must not share issue."""
        alloc = BandwidthContentionAllocator(FREQ, 1e15)
        p = PhaseProfile("x", ipc0=1.0, bytes_per_instr=0.0)
        sim = Simulator()
        cluster = ClusterTopology(node, 2)
        placement = cluster.place(8)
        t_n0 = FluidTask(sim, 1.0, meta={"profile": p, "thread": placement[0]})
        t_n1 = FluidTask(sim, 1.0, meta={"profile": p, "thread": placement[4]})
        rates = alloc.allocate([t_n0, t_n1])
        assert rates == pytest.approx([FREQ, FREQ])
