"""Tests for the compute-speed jitter (determinism and effect)."""

import dataclasses

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.machine import CpuModel, NodeTopology, PhaseProfile, PhaseTable, knl_parameters
from repro.simkit import Simulator

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestJitterMechanics:
    def test_jitter_bounds_validated(self):
        sim = Simulator()
        topo = NodeTopology(n_cores=2, threads_per_core=1, frequency_hz=1e9)
        table = PhaseTable([PhaseProfile("w", ipc0=1.0, bytes_per_instr=0.0)])
        with pytest.raises(ValueError):
            CpuModel(sim, topo, table, 1e9, jitter=1.0)
        with pytest.raises(ValueError):
            CpuModel(sim, topo, table, 1e9, jitter=-0.1)

    def test_zero_jitter_is_exact(self):
        sim = Simulator()
        topo = NodeTopology(n_cores=2, threads_per_core=1, frequency_hz=1e9)
        table = PhaseTable([PhaseProfile("w", ipc0=2.0, bytes_per_instr=0.0)])
        cpu = CpuModel(sim, topo, table, 1e12, jitter=0.0)

        def body():
            rec = yield cpu.compute("s", topo.hw_thread(0, 0), "w", 2.0e9)
            return rec.duration

        assert sim.run(sim.process(body())) == pytest.approx(1.0)

    def test_jitter_spreads_durations(self):
        sim = Simulator()
        topo = NodeTopology(n_cores=8, threads_per_core=1, frequency_hz=1e9)
        table = PhaseTable([PhaseProfile("w", ipc0=1.0, bytes_per_instr=0.0)])
        cpu = CpuModel(sim, topo, table, 1e12, jitter=0.1, jitter_seed=1)
        durations = []

        def body():
            for _ in range(10):
                rec = yield cpu.compute("s", topo.hw_thread(0, 0), "w", 1.0e9)
                durations.append(rec.duration)

        sim.run(sim.process(body()))
        assert len(set(durations)) > 5  # genuinely varied
        for d in durations:
            assert 1.0 / 1.1 - 1e-9 <= d <= 1.0 / 0.9 + 1e-9  # within +-10%

    def test_jitter_preserves_instruction_counts(self):
        """Jitter scales *speed*, not work: counters see true instructions."""
        sim = Simulator()
        topo = NodeTopology(n_cores=2, threads_per_core=1, frequency_hz=1e9)
        table = PhaseTable([PhaseProfile("w", ipc0=1.0, bytes_per_instr=0.0)])
        cpu = CpuModel(sim, topo, table, 1e12, jitter=0.2, jitter_seed=3)

        def body():
            yield cpu.compute("s", topo.hw_thread(0, 0), "w", 5.0e8)

        sim.run(sim.process(body()))
        assert cpu.counters.stream_instructions("s") == pytest.approx(5.0e8)


class TestJitterDeterminism:
    def test_same_seed_same_runtime(self):
        times = {
            run_fft_phase(RunConfig(**SMALL, ranks=2, taskgroups=2)).phase_time
            for _ in range(2)
        }
        assert len(times) == 1

    def test_different_seed_different_runtime(self):
        knl_a = knl_parameters()
        knl_b = dataclasses.replace(knl_a, jitter_seed=99)
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2)
        t_a = run_fft_phase(cfg, knl=knl_a).phase_time
        t_b = run_fft_phase(cfg, knl=knl_b).phase_time
        assert t_a != t_b

    def test_jitter_does_not_change_numerics(self):
        import numpy as np

        knl_a = knl_parameters()
        knl_b = dataclasses.replace(knl_a, jitter_seed=99)
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, data_mode=True)
        out_a = run_fft_phase(cfg, knl=knl_a).output_coefficients()
        out_b = run_fft_phase(cfg, knl=knl_b).output_coefficients()
        np.testing.assert_array_equal(out_a, out_b)


class TestBandwidthRampup:
    def test_capacity_curve_monotone_and_capped(self):
        from repro.machine.contention import BandwidthContentionAllocator

        alloc = BandwidthContentionAllocator(
            1.4e9, 6.9e10, bandwidth_rampup_max=1.277e11, bandwidth_rampup_half=54.5
        )
        caps = [alloc.effective_capacity(n) for n in (1, 8, 16, 32, 64, 128)]
        assert all(a <= b + 1e-6 for a, b in zip(caps, caps[1:]))
        assert caps[-1] == pytest.approx(6.9e10)  # saturation cap
        assert caps[0] < 3e9  # single stream far from peak

    def test_disabled_ramp_gives_flat_capacity(self):
        from repro.machine.contention import BandwidthContentionAllocator

        alloc = BandwidthContentionAllocator(1.4e9, 6.9e10)
        assert alloc.effective_capacity(1) == alloc.effective_capacity(100) == 6.9e10

    def test_rampup_validation(self):
        from repro.machine.contention import BandwidthContentionAllocator

        with pytest.raises(ValueError):
            BandwidthContentionAllocator(1e9, 1e9, bandwidth_rampup_half=-1.0)
