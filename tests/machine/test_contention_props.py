"""Property tests of the water-filling kernels and the allocation memo.

The contention engine has three implementations of the same max-min fair
allocation — the reference Python fixpoint (:func:`waterfill`), the
vectorized sort+cumsum version (:func:`waterfill_vec`) and its scalar twin
for tiny compositions (``_waterfill_scalar``) — plus a composition-keyed
memo on top.  These tests pin the invariants that let them substitute for
each other: feasibility, demand-boundedness, max-min fairness, bit-level
agreement of the twin paths, and order/cache independence of the memoized
allocator.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.contention import (
    BandwidthContentionAllocator,
    _SCALAR_MAX_GROUPS,
    _waterfill_scalar,
    waterfill,
    waterfill_vec,
)
from repro.machine.phases import PhaseProfile
from repro.machine.topology import HwThread
from repro.simkit.fluid import FluidTask
from repro.simkit.simulator import Simulator

demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=24,
)
capacities = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
weight_lists = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=24)


class TestWaterfillInvariants:
    @given(demands=demand_lists, capacity=capacities)
    @settings(max_examples=200)
    def test_vectorized_feasible_and_demand_bounded(self, demands, capacity):
        grants = waterfill_vec(np.asarray(demands), capacity)
        assert grants.shape == (len(demands),)
        assert float(grants.sum()) <= capacity * (1.0 + 1e-9) + 1e-6
        for g, d in zip(grants, demands):
            assert g <= d * (1.0 + 1e-12) + 1e-12
            assert g >= 0.0

    @given(demands=demand_lists, capacity=capacities)
    @settings(max_examples=200)
    def test_vectorized_matches_reference_fixpoint(self, demands, capacity):
        ref = waterfill(demands, capacity)
        vec = waterfill_vec(np.asarray(demands), capacity)
        np.testing.assert_allclose(vec, ref, rtol=1e-9, atol=1e-3)

    @given(demands=demand_lists, capacity=capacities)
    @settings(max_examples=200)
    def test_vectorized_is_max_min_fair(self, demands, capacity):
        """Every grant is min(demand, level) for one shared water level."""
        grants = waterfill_vec(np.asarray(demands), capacity)
        unsatisfied = [
            g for g, d in zip(grants, demands) if g < d * (1.0 - 1e-9) - 1e-12
        ]
        if unsatisfied:
            level = max(unsatisfied)
            # No unsatisfied task sits measurably below another's grant.
            assert min(unsatisfied) >= level * (1.0 - 1e-9) - 1e-6

    @given(demands=demand_lists, capacity=capacities)
    @settings(max_examples=100)
    def test_weights_equal_explicit_duplication(self, demands, capacity):
        """weights=k must allocate like k duplicated demand entries."""
        weights = [2] * len(demands)
        grouped = waterfill_vec(np.asarray(demands), capacity, np.asarray(weights))
        flat = waterfill_vec(np.asarray(np.repeat(demands, 2)), capacity)
        np.testing.assert_allclose(np.repeat(grouped, 2), flat, rtol=1e-9, atol=1e-6)


class TestScalarTwinBitExactness:
    @given(data=st.data(), capacity=capacities)
    @settings(max_examples=200)
    def test_scalar_twin_is_bit_identical_below_group_limit(self, data, capacity):
        m = data.draw(st.integers(min_value=1, max_value=_SCALAR_MAX_GROUPS))
        demands = data.draw(
            st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=m,
                max_size=m,
            )
        )
        weights = data.draw(
            st.lists(st.integers(min_value=1, max_value=64), min_size=m, max_size=m)
        )
        vec = waterfill_vec(
            np.asarray(demands), capacity, np.asarray(weights, dtype=np.int64)
        )
        scalar = _waterfill_scalar(demands, capacity, weights)
        # Bit-identical, not approximately equal: the memo must not depend
        # on which path priced a composition first.
        assert [float(v) for v in vec] == scalar


def _make_allocator():
    return BandwidthContentionAllocator(
        frequency_hz=1.4e9, bandwidth_bytes_per_s=90e9
    )


_PROFILES = [
    PhaseProfile("fft_z", 1.2, 0.9),
    PhaseProfile("fft_xy", 0.8, 2.1),
    PhaseProfile("pack", 1.9, 0.2),
    PhaseProfile("compute_free", 2.0, 0.0),
]


def _make_tasks(spec):
    """Build fluid tasks from (profile index, core, speed) triples."""
    sim = Simulator()
    tasks = []
    for k, (p, core, speed) in enumerate(spec):
        thread = HwThread(core=core, slot=k % 4, index=4 * core + k % 4, node=0)
        tasks.append(
            FluidTask(
                sim,
                1.0,
                meta={"profile": _PROFILES[p], "thread": thread, "speed": speed},
            )
        )
    return tasks


task_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_PROFILES) - 1),
        st.integers(min_value=0, max_value=11),
        st.floats(
            min_value=0.5, max_value=1.5, allow_nan=False, allow_infinity=False
        ),
    ),
    min_size=1,
    max_size=32,
)


class TestAllocatorMemo:
    @given(spec=task_specs, seed=st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_cached_equals_fresh_under_permutation(self, spec, seed):
        """A warmed memo returns the same rates a cold allocator computes,
        for any permutation of the active set."""
        warm = _make_allocator()
        baseline = warm.allocate(_make_tasks(spec))

        permuted = list(range(len(spec)))
        seed.shuffle(permuted)
        spec_p = [spec[i] for i in permuted]

        warm_rates = warm.allocate(_make_tasks(spec_p))  # memo hit
        cold_rates = _make_allocator().allocate(_make_tasks(spec_p))  # miss
        assert warm_rates == cold_rates
        for j, i in enumerate(permuted):
            assert warm_rates[j] == baseline[i]

    @given(spec=task_specs)
    @settings(max_examples=100)
    def test_rates_positive_and_speed_scaled(self, spec):
        alloc = _make_allocator()
        rates = alloc.allocate(_make_tasks(spec))
        assert all(r > 0.0 for r in rates)
        # Doubling a task's speed factor exactly doubles its rate (speed is
        # a pure post-multiplier outside the memoized base rates).
        doubled = [(p, core, 2.0 * s) for (p, core, s) in spec]
        rates2 = _make_allocator().allocate(_make_tasks(doubled))
        for r1, r2 in zip(rates, rates2):
            assert r2 == pytest.approx(2.0 * r1, rel=1e-12)

    @given(spec=task_specs)
    @settings(max_examples=50)
    def test_notifications_leave_no_residue(self, spec):
        """allocate() must restore the incremental occupancy tracking."""
        alloc = _make_allocator()
        alloc.allocate(_make_tasks(spec))
        assert alloc._core_occ == {}
        assert alloc._multi_cores == 0

    def test_hyperthread_sharing_halves_the_ceiling(self):
        """Two compute-bound hyper-threads on one core each run at ipc0/2."""
        alloc = _make_allocator()
        lone = alloc.allocate(_make_tasks([(3, 0, 1.0)]))[0]
        shared = alloc.allocate(_make_tasks([(3, 0, 1.0), (3, 0, 1.0)]))
        assert shared[0] == pytest.approx(lone / 2.0)
        assert shared[1] == pytest.approx(lone / 2.0)

    def test_cache_info_counts_hits_and_misses(self):
        alloc = _make_allocator()
        spec = [(0, 0, 1.0), (1, 1, 1.0)]
        alloc.allocate(_make_tasks(spec))
        alloc.allocate(_make_tasks(spec))
        info = alloc.cache_info()
        assert info["alloc_cache_misses"] == 1
        assert info["alloc_cache_hits"] == 1
        assert info["alloc_cache_size"] == 1

    def test_engine_path_equals_direct_path(self):
        """The batch protocol (statics array) and allocate() agree exactly."""
        alloc = _make_allocator()
        spec = [(0, 0, 1.0), (1, 0, 1.1), (2, 1, 0.9), (1, 2, 1.0)]
        tasks = _make_tasks(spec)
        direct = alloc.allocate(tasks)

        engine = _make_allocator()
        statics = [engine.prepare(t) for t in tasks]
        for s in statics:
            engine.notify_attach(s)
        arr = np.asarray(statics, dtype=float)
        batch = engine.allocate_batch(arr)
        assert direct == batch.tolist()


class TestMathEdgeCases:
    def test_zero_capacity_grants_nothing(self):
        assert waterfill([5.0, 1.0], 0.0) == [0.0, 0.0]
        assert waterfill_vec(np.array([5.0, 1.0]), 0.0).tolist() == [0.0, 0.0]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            waterfill([1.0], -1.0)
        with pytest.raises(ValueError):
            waterfill_vec(np.array([1.0]), -1.0)

    def test_all_zero_demands(self):
        assert waterfill_vec(np.zeros(4), 7.0).tolist() == [0.0] * 4

    def test_level_is_finite_under_extreme_spread(self):
        grants = waterfill_vec(np.array([1e-30, 1e30]), 1.0)
        assert math.isfinite(float(grants.sum()))
        assert float(grants[0]) == pytest.approx(1e-30)
