"""Unit tests for node topology and thread placement."""

import pytest

from repro.machine import NodeTopology, knl_topology


class TestNodeTopology:
    def test_knl_defaults(self):
        topo = knl_topology()
        assert topo.n_cores == 68
        assert topo.threads_per_core == 4
        assert topo.frequency_hz == pytest.approx(1.4e9)
        assert topo.n_hw_threads == 272

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cores": 0},
            {"threads_per_core": 0},
            {"frequency_hz": 0.0},
            {"frequency_hz": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeTopology(**kwargs)

    def test_tile_mapping(self):
        topo = NodeTopology(n_cores=8, cores_per_tile=2)
        assert [topo.tile_of(c) for c in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_hw_thread_bounds(self):
        topo = NodeTopology(n_cores=4, threads_per_core=2)
        with pytest.raises(ValueError):
            topo.hw_thread(4, 0)
        with pytest.raises(ValueError):
            topo.hw_thread(0, 2)

    def test_hw_thread_indices_unique(self):
        topo = NodeTopology(n_cores=4, threads_per_core=2)
        indices = {
            topo.hw_thread(c, s).index
            for c in range(4)
            for s in range(2)
        }
        assert len(indices) == 8


class TestPlacement:
    def test_spread_across_cores_first(self):
        topo = NodeTopology(n_cores=4, threads_per_core=2)
        placement = topo.place(4)
        assert [t.core for t in placement] == [0, 1, 2, 3]
        assert all(t.slot == 0 for t in placement)
        assert placement.max_threads_per_core == 1

    def test_wraps_onto_second_hyperthread(self):
        topo = NodeTopology(n_cores=4, threads_per_core=2)
        placement = topo.place(6)
        assert [(t.core, t.slot) for t in placement] == [
            (0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1),
        ]
        assert placement.max_threads_per_core == 2

    def test_paper_configurations(self):
        """8x8=64 streams: 1/core.  16x8=128: 2 HT on most cores.  32x8=256: 4 HT."""
        topo = knl_topology()
        assert topo.place(64).max_threads_per_core == 1
        assert topo.place(128).max_threads_per_core == 2
        assert topo.place(256).max_threads_per_core == 4

    def test_oversubscription_rejected(self):
        topo = NodeTopology(n_cores=2, threads_per_core=2)
        with pytest.raises(ValueError):
            topo.place(5)

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            knl_topology().place(0)

    def test_streams_on_core(self):
        topo = NodeTopology(n_cores=2, threads_per_core=2)
        placement = topo.place(4)
        assert placement.streams_on_core(0) == [0, 2]
        assert placement.streams_on_core(1) == [1, 3]
