"""Unit tests for the CPU model and hardware counters."""

import pytest

from repro.machine import (
    CounterSet,
    CpuModel,
    NodeTopology,
    PhaseProfile,
    PhaseTable,
    knl_phase_table,
)
from repro.simkit import Simulator

FREQ = 1.0e9


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def topo():
    return NodeTopology(n_cores=4, threads_per_core=2, frequency_hz=FREQ)


@pytest.fixture()
def cpu(sim, topo):
    table = PhaseTable(
        [
            PhaseProfile("fast", ipc0=2.0, bytes_per_instr=0.0),
            PhaseProfile("slow", ipc0=0.5, bytes_per_instr=0.0),
            PhaseProfile("heavy", ipc0=2.0, bytes_per_instr=2.0),
        ]
    )
    return CpuModel(sim, topo, table, bandwidth_bytes_per_s=8.0e9)


class TestCompute:
    def test_duration_matches_nominal_ipc(self, sim, topo, cpu):
        def body():
            rec = yield cpu.compute("r0", topo.hw_thread(0, 0), "fast", 2.0e9)
            return (sim.now, rec.duration)

        now, dur = sim.run(sim.process(body()))
        # 2e9 instructions at 2 IPC * 1 GHz = 1 second.
        assert now == pytest.approx(1.0)
        assert dur == pytest.approx(1.0)

    def test_unknown_phase_raises_immediately(self, topo, cpu):
        with pytest.raises(KeyError, match="unknown phase"):
            cpu.compute("r0", topo.hw_thread(0, 0), "nope", 1.0)

    def test_negative_instructions_rejected(self, topo, cpu):
        with pytest.raises(ValueError):
            cpu.compute("r0", topo.hw_thread(0, 0), "fast", -5.0)

    def test_counters_accumulate(self, sim, topo, cpu):
        def body():
            yield cpu.compute("r0", topo.hw_thread(0, 0), "fast", 2.0e9)
            yield cpu.compute("r0", topo.hw_thread(0, 0), "slow", 1.0e9)

        sim.run(sim.process(body()))
        c = cpu.counters
        assert c.stream_instructions("r0") == pytest.approx(3.0e9)
        assert c.stream_compute_time("r0") == pytest.approx(1.0 + 2.0)
        assert c.stream_ipc("r0") == pytest.approx(3.0 / 3.0)
        assert c.phase_ipc("slow") == pytest.approx(0.5)

    def test_observer_receives_records(self, sim, topo, cpu):
        records = []
        cpu.add_observer(records.append)

        def body():
            yield cpu.compute("r0", topo.hw_thread(0, 0), "fast", 1.0e9)

        sim.run(sim.process(body()))
        assert len(records) == 1
        rec = records[0]
        assert rec.phase == "fast"
        assert rec.stream == "r0"
        assert rec.ipc(FREQ) == pytest.approx(2.0)

    def test_concurrent_heavy_phases_slow_each_other(self, sim, topo, cpu):
        finish = {}

        def worker(name, core):
            rec = yield cpu.compute(name, topo.hw_thread(core, 0), "heavy", 2.0e9)
            finish[name] = (sim.now, rec.ipc(FREQ))

        for i in range(4):
            sim.process(worker(f"r{i}", i))
        sim.run()
        # Each demands 4 GB/s against 8 GB/s: IPC throttled 2.0 -> 1.0.
        for name, (t, ipc) in finish.items():
            assert ipc == pytest.approx(1.0)
            assert t == pytest.approx(2.0)

    def test_current_ipc_of_running_stream(self, sim, topo, cpu):
        observed = []

        def worker():
            ev = cpu.compute("r0", topo.hw_thread(0, 0), "fast", 2.0e9)
            yield sim.timeout(0.25)
            observed.append(cpu.current_ipc_of("r0"))
            yield ev

        sim.run(sim.process(worker()))
        assert observed == [pytest.approx(2.0)]
        assert cpu.current_ipc_of("r0") is None

    def test_zero_instructions_complete_instantly(self, sim, topo, cpu):
        def body():
            rec = yield cpu.compute("r0", topo.hw_thread(0, 0), "fast", 0.0)
            return (sim.now, rec.duration)

        now, dur = sim.run(sim.process(body()))
        assert now == 0.0
        assert dur == 0.0


class TestCounterSet:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            CounterSet(0.0)

    def test_empty_counters_return_zero(self):
        c = CounterSet(FREQ)
        assert c.average_ipc() == 0.0
        assert c.stream_ipc("nobody") == 0.0
        assert c.phase_ipc("nothing") == 0.0
        assert c.streams == []

    def test_weighted_average_ipc(self):
        c = CounterSet(FREQ)
        # 1e9 instr in 1 s (IPC 1), 1e9 instr in 4 s (IPC .25):
        c.record("a", "p", 1.0e9, 1.0)
        c.record("b", "p", 1.0e9, 4.0)
        assert c.average_ipc() == pytest.approx(2.0e9 / (5.0 * FREQ))

    def test_per_phase_breakdown(self):
        c = CounterSet(FREQ)
        c.record("a", "x", 1.0e9, 1.0)
        c.record("a", "x", 1.0e9, 1.0)
        c.record("a", "y", 5.0e8, 1.0)
        phases = c.phases("a")
        assert phases["x"].occurrences == 2
        assert phases["x"].instructions == pytest.approx(2.0e9)
        assert phases["y"].ipc(FREQ) == pytest.approx(0.5)


class TestKnlPhaseTable:
    def test_contains_all_pipeline_phases(self):
        table = knl_phase_table()
        for phase in [
            "prepare_psis",
            "pack_sticks",
            "unpack_sticks",
            "fft_z",
            "scatter_reorder",
            "fft_xy",
            "vofr",
        ]:
            assert phase in table

    def test_fig3_anchor_full_node_xy_ipc(self):
        """64 synchronized fft_xy threads on the calibrated node -> ~0.77 IPC."""
        from repro.machine import knl_parameters, knl_topology
        from repro.machine.contention import BandwidthContentionAllocator
        from repro.simkit.fluid import FluidTask

        params = knl_parameters()
        topo = knl_topology(params)
        table = knl_phase_table()
        alloc = BandwidthContentionAllocator(params.frequency_hz, params.mem_bandwidth)
        sim = Simulator()
        placement = topo.place(64)
        tasks = [
            FluidTask(sim, 1e9, meta={"profile": table["fft_xy"], "thread": placement[i]})
            for i in range(64)
        ]
        rates = alloc.allocate(tasks)
        ipc = rates[0] / params.frequency_hz
        assert ipc == pytest.approx(0.77, abs=0.02)

    def test_fig3_anchor_full_node_z_ipc(self):
        """64 synchronized fft_z threads -> ~0.52 IPC."""
        from repro.machine import knl_parameters, knl_topology
        from repro.machine.contention import BandwidthContentionAllocator
        from repro.simkit.fluid import FluidTask

        params = knl_parameters()
        topo = knl_topology(params)
        table = knl_phase_table()
        alloc = BandwidthContentionAllocator(params.frequency_hz, params.mem_bandwidth)
        sim = Simulator()
        placement = topo.place(64)
        tasks = [
            FluidTask(sim, 1e9, meta={"profile": table["fft_z"], "thread": placement[i]})
            for i in range(64)
        ]
        rates = alloc.allocate(tasks)
        ipc = rates[0] / params.frequency_hz
        assert ipc == pytest.approx(0.52, abs=0.02)
