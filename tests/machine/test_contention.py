"""Unit and property tests for the contention model (water filling + HT sharing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    BandwidthContentionAllocator,
    NodeTopology,
    PhaseProfile,
)
from repro.machine.contention import waterfill
from repro.simkit.fluid import FluidTask
from repro.simkit import Simulator


class TestWaterfill:
    def test_empty(self):
        assert waterfill([], 10.0) == []

    def test_all_satisfied_when_capacity_ample(self):
        assert waterfill([1.0, 2.0, 3.0], 100.0) == [1.0, 2.0, 3.0]

    def test_equal_split_when_all_demand_exceeds_fair_share(self):
        grants = waterfill([10.0, 10.0, 10.0], 9.0)
        assert grants == pytest.approx([3.0, 3.0, 3.0])

    def test_small_demand_fully_served_slack_redistributed(self):
        # fair share is 4; the 1.0 demand is served fully, the rest split 11/2.
        grants = waterfill([1.0, 10.0, 10.0], 12.0)
        assert grants[0] == pytest.approx(1.0)
        assert grants[1] == pytest.approx(5.5)
        assert grants[2] == pytest.approx(5.5)

    def test_zero_demands_get_zero(self):
        grants = waterfill([0.0, 5.0], 4.0)
        assert grants == pytest.approx([0.0, 4.0])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            waterfill([1.0], -1.0)

    @settings(max_examples=60, deadline=None)
    @given(
        demands=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=16),
        capacity=st.floats(min_value=0.1, max_value=200.0),
    )
    def test_waterfill_invariants(self, demands, capacity):
        grants = waterfill(demands, capacity)
        assert len(grants) == len(demands)
        # No grant exceeds its demand; no grant negative.
        for g, d in zip(grants, demands):
            assert -1e-9 <= g <= d + 1e-9
        # Capacity respected.
        assert sum(grants) <= capacity * (1 + 1e-9)
        # Work conserving: either all demands met or capacity (nearly) exhausted.
        if sum(demands) >= capacity:
            assert sum(grants) == pytest.approx(capacity, rel=1e-6)
        else:
            assert grants == pytest.approx(demands)

    @settings(max_examples=40, deadline=None)
    @given(
        demands=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=2, max_size=10),
        capacity=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_waterfill_max_min_fairness(self, demands, capacity):
        """No task that got less than its demand received less than another task."""
        grants = waterfill(demands, capacity)
        unsat = [g for g, d in zip(grants, demands) if g < d - 1e-9]
        if unsat:
            floor = min(unsat)
            assert all(g <= max(floor, d) + 1e-6 for g, d in zip(grants, demands))


def _task(sim, profile, thread, work=1e9):
    return FluidTask(sim, work, meta={"profile": profile, "thread": thread})


class TestBandwidthContentionAllocator:
    FREQ = 1.0e9
    BW = 8.0e9

    @pytest.fixture()
    def topo(self):
        return NodeTopology(n_cores=4, threads_per_core=2, frequency_hz=self.FREQ)

    @pytest.fixture()
    def alloc(self):
        return BandwidthContentionAllocator(self.FREQ, self.BW)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BandwidthContentionAllocator(0.0, 1.0)
        with pytest.raises(ValueError):
            BandwidthContentionAllocator(1.0, 0.0)

    def test_lone_task_runs_at_nominal_ipc(self, topo, alloc):
        sim = Simulator()
        p = PhaseProfile("x", ipc0=1.5, bytes_per_instr=0.1)
        rates = alloc.allocate([_task(sim, p, topo.hw_thread(0, 0))])
        assert rates[0] == pytest.approx(1.5 * self.FREQ)
        assert alloc.effective_ipc(rates[0]) == pytest.approx(1.5)

    def test_hyperthreads_share_issue_linearly(self, topo, alloc):
        """Two hyper-threads on the same core each get half the nominal IPC —
        the paper's 'IPC cut in half' observation for 2x HT."""
        sim = Simulator()
        p = PhaseProfile("x", ipc0=1.0, bytes_per_instr=0.0)
        t0 = _task(sim, p, topo.hw_thread(0, 0))
        t1 = _task(sim, p, topo.hw_thread(0, 1))
        rates = alloc.allocate([t0, t1])
        assert rates == pytest.approx([0.5 * self.FREQ, 0.5 * self.FREQ])

    def test_separate_cores_do_not_share_issue(self, topo, alloc):
        sim = Simulator()
        p = PhaseProfile("x", ipc0=1.0, bytes_per_instr=0.0)
        rates = alloc.allocate(
            [_task(sim, p, topo.hw_thread(0, 0)), _task(sim, p, topo.hw_thread(1, 0))]
        )
        assert rates == pytest.approx([self.FREQ, self.FREQ])

    def test_bandwidth_throttles_synchronized_heavy_phases(self, topo, alloc):
        """4 cores each demanding 4 GB/s against an 8 GB/s node: halved."""
        sim = Simulator()
        p = PhaseProfile("heavy", ipc0=2.0, bytes_per_instr=2.0)  # demand 4e9 each
        tasks = [_task(sim, p, topo.hw_thread(c, 0)) for c in range(4)]
        rates = alloc.allocate(tasks)
        for r in rates:
            assert r == pytest.approx(self.BW / 4 / 2.0)  # grant / bpi = 1e9 instr/s
            assert alloc.effective_ipc(r) == pytest.approx(1.0)

    def test_desynchronization_raises_heavy_phase_ipc(self, topo, alloc):
        """The Fig. 7 mechanism: replacing two heavy co-runners with light ones
        gives the remaining heavy phases more bandwidth and higher IPC."""
        sim = Simulator()
        heavy = PhaseProfile("heavy", ipc0=2.0, bytes_per_instr=2.0)
        light = PhaseProfile("light", ipc0=0.06, bytes_per_instr=1.0)
        sync = [_task(sim, heavy, topo.hw_thread(c, 0)) for c in range(4)]
        sync_rate = alloc.allocate(sync)[0]
        mixed = [
            _task(sim, heavy, topo.hw_thread(0, 0)),
            _task(sim, heavy, topo.hw_thread(1, 0)),
            _task(sim, light, topo.hw_thread(2, 0)),
            _task(sim, light, topo.hw_thread(3, 0)),
        ]
        mixed_rates = alloc.allocate(mixed)
        assert mixed_rates[0] > sync_rate
        # Light phases are latency bound and unaffected.
        assert alloc.effective_ipc(mixed_rates[2]) == pytest.approx(0.06)

    def test_zero_traffic_phase_ignores_bandwidth(self, topo, alloc):
        sim = Simulator()
        p = PhaseProfile("cpu_only", ipc0=1.0, bytes_per_instr=0.0)
        heavy = PhaseProfile("heavy", ipc0=2.0, bytes_per_instr=10.0)
        tasks = [_task(sim, p, topo.hw_thread(0, 0))] + [
            _task(sim, heavy, topo.hw_thread(c, 0)) for c in range(1, 4)
        ]
        rates = alloc.allocate(tasks)
        assert rates[0] == pytest.approx(self.FREQ)

    def test_missing_metadata_raises(self, topo, alloc):
        sim = Simulator()
        bare = FluidTask(sim, 1.0, meta={})
        with pytest.raises(RuntimeError, match="metadata"):
            alloc.allocate([bare])

    @settings(max_examples=30, deadline=None)
    @given(n_heavy=st.integers(min_value=1, max_value=8))
    def test_ipc_monotonically_nonincreasing_in_contention(self, n_heavy):
        """Adding one more synchronized heavy co-runner can never raise anyone's IPC."""
        freq, bw = 1.0e9, 5.0e9
        topo = NodeTopology(n_cores=16, threads_per_core=1, frequency_hz=freq)
        alloc = BandwidthContentionAllocator(freq, bw)
        heavy = PhaseProfile("heavy", ipc0=1.4, bytes_per_instr=1.0)
        sim = Simulator()

        def first_rate(k):
            tasks = [_task(sim, heavy, topo.hw_thread(c, 0)) for c in range(k)]
            return alloc.allocate(tasks)[0]

        assert first_rate(n_heavy) >= first_rate(n_heavy + 1) - 1e-6
