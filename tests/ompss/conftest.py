"""Shared fixtures: a 1-rank world with 4 hardware threads for task tests."""

import pytest

from repro.machine import CpuModel, NodeTopology, PhaseProfile, PhaseTable
from repro.mpisim import MpiWorld, NetworkModel
from repro.simkit import Simulator

FREQ = 1.0e9


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def world(sim):
    topo = NodeTopology(n_cores=8, threads_per_core=2, frequency_hz=FREQ)
    table = PhaseTable([PhaseProfile("work", ipc0=1.0, bytes_per_instr=0.0)])
    cpu = CpuModel(sim, topo, table, bandwidth_bytes_per_s=1.0e12)
    net = NetworkModel(sim, capacity=8.0e9, injection_bw=1.0e9, latency=1.0e-6)
    return MpiWorld(sim, cpu, net, n_ranks=2, threads_per_rank=4)


@pytest.fixture()
def rank(world):
    return world.ranks[0]
