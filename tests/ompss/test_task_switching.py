"""Tests for MPI task switching (the paper's ref. [11] mechanism)."""

import pytest

from repro.mpisim import MetaPayload
from repro.ompss import TaskRuntime


class TestTaskSwitching:
    def test_blocked_task_releases_worker(self, sim, world):
        """With one worker, a task blocked in MPI must not stop an
        independent compute task from running."""
        order = []

        def make_program(peer_delay):
            def program(rank):
                rt = TaskRuntime(rank, n_workers=1, task_overhead=0.0, mpi_task_switching=True)
                rt.start()

                def comm_task(worker):
                    order.append((rank.rank, "comm-start", rank.sim.now))
                    yield rank.alltoall(
                        world.comm_world,
                        [MetaPayload(8.0)] * world.comm_world.size,
                        key="x",
                        thread=worker.thread_index,
                    )
                    order.append((rank.rank, "comm-end", rank.sim.now))

                def compute_task(worker):
                    yield rank.compute("work", 1.0e9, thread=worker.thread_index)
                    order.append((rank.rank, "compute-end", rank.sim.now))

                if rank.rank == 0:
                    rt.submit("comm", comm_task, inouts=["a"])
                    rt.submit("compute", compute_task, inouts=["b"])
                else:
                    # Peer arrives at the collective only after a delay.
                    yield rank.sim.timeout(peer_delay)
                    rt.submit("comm", comm_task, inouts=["a"])
                yield rt.taskwait()
                yield rt.shutdown()

            return program

        world.launch(make_program(2.0))
        world.run()
        r0 = [e for e in order if e[0] == 0]
        kinds = [e[1] for e in r0]
        # Rank 0's compute finished while its comm task was still parked.
        assert kinds.index("compute-end") < kinds.index("comm-end")
        compute_end = next(e[2] for e in r0 if e[1] == "compute-end")
        assert compute_end == pytest.approx(1.0)  # ran immediately, not after 2 s

    def test_without_switching_worker_blocks(self, sim, world):
        """Same scenario, switching off: compute waits for the collective."""
        order = []

        def make_program(peer_delay):
            def program(rank):
                rt = TaskRuntime(rank, n_workers=1, task_overhead=0.0, mpi_task_switching=False)
                rt.start()

                def comm_task(worker):
                    yield rank.alltoall(
                        world.comm_world,
                        [MetaPayload(8.0)] * world.comm_world.size,
                        key="x",
                        thread=worker.thread_index,
                    )

                def compute_task(worker):
                    yield rank.compute("work", 1.0e9, thread=worker.thread_index)
                    order.append(("compute-end", rank.sim.now))

                if rank.rank == 0:
                    rt.submit("comm", comm_task, inouts=["a"])
                    rt.submit("compute", compute_task, inouts=["b"])
                else:
                    yield rank.sim.timeout(2.0)
                    rt.submit("comm", comm_task, inouts=["a"])
                yield rt.taskwait()
                yield rt.shutdown()

            return program

        world.launch(make_program(2.0))
        world.run()
        assert order[0][1] >= 3.0  # blocked behind the 2 s late collective

    def test_continuation_resumes_on_same_worker(self, sim, world):
        """The resumed half of a parked task runs on its original worker
        (its compute calls are bound to that hardware thread)."""
        seen = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0, mpi_task_switching=True)
            rt.start()

            def comm_task(worker):
                first = worker.index
                yield rank.barrier(world.comm_world, key="b", thread=worker.thread_index)
                yield rank.compute("work", 1.0e8, thread=worker.thread_index)
                seen.append((rank.rank, first, worker.index))

            rt.submit("comm", comm_task, inouts=["a"])
            yield rt.taskwait()
            yield rt.shutdown()

        world.launch(program)
        world.run()
        assert seen
        assert all(first == after for _r, first, after in seen)

    def test_many_parked_tasks_single_worker(self, sim, world):
        """One worker can carry many concurrently parked collectives."""
        done = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=1, task_overhead=0.0, mpi_task_switching=True)
            rt.start()
            for i in range(5):
                def body(worker, i=i):
                    yield rank.alltoall(
                        world.comm_world,
                        [MetaPayload(8.0)] * world.comm_world.size,
                        key=("k", i),
                        thread=worker.thread_index,
                    )
                    done.append((rank.rank, i))

                rt.submit(f"c{i}", body, inouts=[("band", i)])
            yield rt.taskwait()
            yield rt.shutdown()

        world.launch(program)
        world.run()
        assert len(done) == 5 * world.comm_world.size

    def test_exception_in_parked_event_propagates(self, sim, rank, world):
        """A failing MPI call inside a parked task reaches the task body."""
        caught = []

        def program(rk):
            rt = TaskRuntime(rk, n_workers=1, task_overhead=0.0, mpi_task_switching=True)
            rt.start()

            def body(worker):
                try:
                    # Mismatched part count raises inside the collective.
                    yield rk.alltoall(world.comm_world, [MetaPayload(1.0)], key="bad")
                except Exception as exc:  # noqa: BLE001 - test observes it
                    caught.append(type(exc).__name__)
                    yield rk.sim.timeout(0)

            rt.submit("bad", body)
            yield rt.taskwait()
            yield rt.shutdown()

        world.launch(program, ranks=[0])
        try:
            world.run()
        except Exception:
            pass
        assert caught == ["MpiSimError"] or caught == []
