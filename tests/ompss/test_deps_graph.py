"""Unit tests for dependency rules and the task graph (no workers needed)."""

import pytest

from repro.ompss import AccessMode, DependencyTracker, Task, TaskGraph, TaskState
from repro.simkit import Simulator


def make_task(sim, tid, ins=(), outs=(), inouts=()):
    accesses = (
        [(r, AccessMode.IN) for r in ins]
        + [(r, AccessMode.OUT) for r in outs]
        + [(r, AccessMode.INOUT) for r in inouts]
    )
    return Task(tid, f"t{tid}", lambda w: iter(()), accesses, sim.event())


@pytest.fixture()
def sim():
    return Simulator()


class TestDependencyRules:
    def test_raw_dependency(self, sim):
        tr = DependencyTracker()
        writer = make_task(sim, 0, outs=["x"])
        reader = make_task(sim, 1, ins=["x"])
        assert tr.register(writer) == set()
        assert tr.register(reader) == {writer}

    def test_war_dependency(self, sim):
        tr = DependencyTracker()
        reader = make_task(sim, 0, ins=["x"])
        writer = make_task(sim, 1, outs=["x"])
        tr.register(reader)
        assert tr.register(writer) == {reader}

    def test_waw_dependency(self, sim):
        tr = DependencyTracker()
        w1 = make_task(sim, 0, outs=["x"])
        w2 = make_task(sim, 1, outs=["x"])
        tr.register(w1)
        assert tr.register(w2) == {w1}

    def test_readers_do_not_depend_on_each_other(self, sim):
        tr = DependencyTracker()
        w = make_task(sim, 0, outs=["x"])
        r1 = make_task(sim, 1, ins=["x"])
        r2 = make_task(sim, 2, ins=["x"])
        tr.register(w)
        assert tr.register(r1) == {w}
        assert tr.register(r2) == {w}

    def test_inout_chain_serializes(self, sim):
        tr = DependencyTracker()
        t1 = make_task(sim, 0, inouts=["psis"])
        t2 = make_task(sim, 1, inouts=["psis"])
        t3 = make_task(sim, 2, inouts=["psis"])
        tr.register(t1)
        assert tr.register(t2) == {t1}
        assert tr.register(t3) == {t2}

    def test_independent_regions_no_deps(self, sim):
        tr = DependencyTracker()
        t1 = make_task(sim, 0, inouts=[("psis", 0)])
        t2 = make_task(sim, 1, inouts=[("psis", 1)])
        tr.register(t1)
        assert tr.register(t2) == set()

    def test_writer_then_readers_then_writer(self, sim):
        """The Fig. 4 flow pattern: out -> in,in -> inout gathers all readers."""
        tr = DependencyTracker()
        w1 = make_task(sim, 0, outs=["aux"])
        r1 = make_task(sim, 1, ins=["aux"])
        r2 = make_task(sim, 2, ins=["aux"])
        w2 = make_task(sim, 3, inouts=["aux"])
        tr.register(w1)
        tr.register(r1)
        tr.register(r2)
        # WAR edges on both readers plus the (transitively redundant but
        # harmless) WAW edge on the previous writer.
        assert tr.register(w2) == {w1, r1, r2}

    def test_finished_predecessors_excluded(self, sim):
        tr = DependencyTracker()
        w = make_task(sim, 0, outs=["x"])
        tr.register(w)
        w.state = TaskState.FINISHED
        r = make_task(sim, 1, ins=["x"])
        assert tr.register(r) == set()


class TestTaskGraph:
    def test_independent_tasks_ready_immediately(self, sim):
        ready = []
        graph = TaskGraph(on_ready=ready.append)
        t1 = make_task(sim, 0, inouts=[("b", 0)])
        t2 = make_task(sim, 1, inouts=[("b", 1)])
        graph.add(t1)
        graph.add(t2)
        assert ready == [t1, t2]
        assert graph.n_edges == 0

    def test_chain_releases_in_order(self, sim):
        ready = []
        graph = TaskGraph(on_ready=ready.append)
        t1 = make_task(sim, 0, outs=["x"])
        t2 = make_task(sim, 1, ins=["x"], outs=["y"])
        t3 = make_task(sim, 2, ins=["y"])
        for t in (t1, t2, t3):
            graph.add(t)
        assert ready == [t1]
        t1.state = TaskState.RUNNING
        graph.complete(t1)
        assert ready == [t1, t2]
        t2.state = TaskState.RUNNING
        graph.complete(t2)
        assert ready == [t1, t2, t3]
        assert graph.n_outstanding == 1

    def test_diamond_joins(self, sim):
        ready = []
        graph = TaskGraph(on_ready=ready.append)
        src = make_task(sim, 0, outs=["x"])
        a = make_task(sim, 1, ins=["x"], outs=["a"])
        b = make_task(sim, 2, ins=["x"], outs=["b"])
        join = make_task(sim, 3, ins=["a", "b"])
        for t in (src, a, b, join):
            graph.add(t)
        src.state = TaskState.RUNNING
        graph.complete(src)
        assert set(ready) == {src, a, b}
        a.state = TaskState.RUNNING
        graph.complete(a)
        assert join not in ready
        b.state = TaskState.RUNNING
        graph.complete(b)
        assert join in ready

    def test_complete_non_running_rejected(self, sim):
        graph = TaskGraph(on_ready=lambda t: None)
        t = make_task(sim, 0)
        graph.add(t)
        with pytest.raises(RuntimeError):
            graph.complete(t)
