"""Integration tests for the task runtime on the simulated machine."""

import pytest

from repro.ompss import TaskRuntime
from repro.ompss.scheduler import FifoQueue, LifoQueue, PriorityQueue, make_queue


def compute_body(rank, instructions, log=None, name=None):
    def body(worker):
        rec = yield rank.compute("work", instructions, thread=worker.thread_index)
        if log is not None:
            log.append((name, rec.start, rec.end, worker.index))
        return name

    return body


class TestSchedulerQueues:
    def test_make_queue_policies(self):
        assert isinstance(make_queue("fifo"), FifoQueue)
        assert isinstance(make_queue("lifo"), LifoQueue)
        assert isinstance(make_queue("priority"), PriorityQueue)
        with pytest.raises(ValueError):
            make_queue("random")


class TestExecution:
    def test_single_task_runs(self, sim, rank):
        results = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
            rt.start()
            task = rt.submit("t", compute_body(rank, 1.0e9))
            yield rt.taskwait()
            results.append(task.done.value)
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert results == [None] or results == ["t"] or results  # value is body return
        assert sim.now == pytest.approx(1.0)

    def test_independent_tasks_run_in_parallel(self, sim, rank):
        log = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=4, task_overhead=0.0)
            rt.start()
            for i in range(4):
                rt.submit(f"t{i}", compute_body(rank, 1.0e9, log, f"t{i}"), inouts=[("band", i)])
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        # 4 independent 1s tasks on 4 workers: all overlap, makespan 1s.
        assert sim.now == pytest.approx(1.0)
        assert {entry[3] for entry in log} == {0, 1, 2, 3}

    def test_more_tasks_than_workers_queue_up(self, sim, rank):
        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
            rt.start()
            for i in range(6):
                rt.submit(f"t{i}", compute_body(rank, 1.0e9), inouts=[("band", i)])
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sim.now == pytest.approx(3.0)  # 6 x 1s over 2 workers

    def test_dependency_chain_serializes(self, sim, rank):
        log = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=4, task_overhead=0.0)
            rt.start()
            rt.submit("a", compute_body(rank, 1.0e9, log, "a"), outs=["x"])
            rt.submit("b", compute_body(rank, 1.0e9, log, "b"), ins=["x"], outs=["y"])
            rt.submit("c", compute_body(rank, 1.0e9, log, "c"), ins=["y"])
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sim.now == pytest.approx(3.0)
        order = [e[0] for e in sorted(log, key=lambda e: e[1])]
        assert order == ["a", "b", "c"]

    def test_flow_dependency_pipeline_overlaps_iterations(self, sim, rank):
        """Two independent iteration chains overlap on two workers (the Opt 1
        principle: independent loop iterations proceed concurrently)."""

        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
            rt.start()
            for it in range(2):
                rt.submit(f"s1_{it}", compute_body(rank, 1.0e9), outs=[("psi", it)])
                rt.submit(f"s2_{it}", compute_body(rank, 1.0e9), inouts=[("psi", it)])
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        # Serial would be 4s; two chains of 2s overlap -> 2s.
        assert sim.now == pytest.approx(2.0)

    def test_task_overhead_charged(self, sim, rank):
        def program(rank):
            rt = TaskRuntime(rank, n_workers=1, task_overhead=0.5)
            rt.start()
            rt.submit("t", compute_body(rank, 1.0e9))
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_nested_task_creation(self, sim, rank):
        def outer_body(rt, rank):
            def body(worker):
                yield rank.compute("work", 1.0e9, thread=worker.thread_index)
                rt.submit("inner", compute_body(rank, 1.0e9))

            return body

        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
            rt.start()
            rt.submit("outer", outer_body(rt, rank))
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_mpi_inside_tasks_with_keys(self, sim, world):
        """Two ranks run per-band tasks issuing keyed alltoalls from inside
        tasks (the per-FFT optimization's communication pattern)."""
        done = []

        def make_program(world):
            def program(rank):
                rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
                rt.start()
                for band in range(4):
                    def body(worker, band=band):
                        yield rank.compute("work", 1.0e8, thread=worker.thread_index)
                        from repro.mpisim import MetaPayload

                        yield rank.alltoall(
                            world.comm_world,
                            [MetaPayload(1000.0)] * world.comm_world.size,
                            key=("scatter", band),
                            thread=worker.thread_index,
                        )

                    rt.submit(f"band{band}", body, inouts=[("band", band)])
                yield rt.taskwait()
                yield rt.shutdown()
                done.append(rank.rank)

            return program

        world.launch(make_program(world))
        world.run()
        assert sorted(done) == [0, 1]


class TestTaskwaitShutdown:
    def test_taskwait_with_no_tasks_fires_immediately(self, sim, rank):
        def program(rank):
            rt = TaskRuntime(rank, n_workers=1)
            rt.start()
            yield rt.taskwait()
            yield rt.shutdown()
            return sim.now

        proc = sim.process(program(rank))
        assert sim.run(proc) == 0.0

    def test_submit_before_start_rejected(self, rank):
        rt = TaskRuntime(rank, n_workers=1)
        with pytest.raises(RuntimeError, match="start"):
            rt.submit("t", compute_body(rank, 1.0))

    def test_submit_after_shutdown_rejected(self, sim, rank):
        errors = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=1, task_overhead=0.0)
            rt.start()
            yield rt.shutdown()
            try:
                rt.submit("t", compute_body(rank, 1.0))
            except RuntimeError as exc:
                errors.append(str(exc))

        sim.process(program(rank))
        sim.run()
        assert errors and "shutdown" in errors[0]

    def test_invalid_worker_count(self, rank):
        with pytest.raises(ValueError):
            TaskRuntime(rank, n_workers=0)
        with pytest.raises(ValueError):
            TaskRuntime(rank, n_workers=99)

    def test_negative_overhead_rejected(self, rank):
        with pytest.raises(ValueError):
            TaskRuntime(rank, task_overhead=-1.0)

    def test_shutdown_drains_queued_tasks(self, sim, rank):
        """Tasks still queued at shutdown() must run before workers exit."""
        finished = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=1, task_overhead=0.0)
            rt.start()
            for i in range(3):
                t = rt.submit(f"t{i}", compute_body(rank, 1.0e9), inouts=[("b", i)])
                t.done.add_callback(lambda ev: finished.append(ev.value))
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert len(finished) == 3


class TestTaskloop:
    def test_chunking(self, sim, rank):
        chunks = []

        def make_body(start, stop):
            def body(worker):
                chunks.append((start, stop))
                yield rank.compute("work", float(stop - start) * 1e8, thread=worker.thread_index)

            return body

        def program(rank):
            rt = TaskRuntime(rank, n_workers=4, task_overhead=0.0)
            rt.start()
            tasks = rt.taskloop("loop", n_items=25, make_body=make_body, grainsize=10)
            assert len(tasks) == 3
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert sorted(chunks) == [(0, 10), (10, 20), (20, 25)]

    def test_grainsize_validation(self, sim, rank):
        def program(rank):
            rt = TaskRuntime(rank, n_workers=1)
            rt.start()
            with pytest.raises(ValueError):
                rt.taskloop("l", 10, lambda a, b: lambda w: iter(()), grainsize=0)
            with pytest.raises(ValueError):
                rt.taskloop("l", -1, lambda a, b: lambda w: iter(()), grainsize=1)
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()

    def test_empty_taskloop(self, sim, rank):
        def program(rank):
            rt = TaskRuntime(rank, n_workers=1)
            rt.start()
            tasks = rt.taskloop("l", 0, lambda a, b: lambda w: iter(()), grainsize=5)
            assert tasks == []
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()


class TestPolicies:
    def _run_policy(self, sim, rank, policy):
        order = []

        def make_body(i):
            def body(worker):
                order.append(i)
                yield rank.compute("work", 1.0e8, thread=worker.thread_index)

            return body

        def program(rank):
            rt = TaskRuntime(rank, n_workers=1, policy=policy, task_overhead=0.0)
            rt.start()
            # Give the worker something to chew on so later submissions queue.
            rt.submit("warm", compute_body(rank, 1.0e8), inouts=[("w", 0)])
            for i in range(4):
                rt.submit(f"t{i}", make_body(i), inouts=[("b", i)], priority=i)
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        return order

    def test_fifo_order(self, sim, rank):
        assert self._run_policy(sim, rank, "fifo") == [0, 1, 2, 3]

    def test_lifo_order(self, sim, rank):
        assert self._run_policy(sim, rank, "lifo") == [3, 2, 1, 0]

    def test_priority_order(self, sim, rank):
        assert self._run_policy(sim, rank, "priority") == [3, 2, 1, 0]


class TestObservers:
    def test_task_records(self, sim, rank):
        records = []

        def program(rank):
            rt = TaskRuntime(rank, n_workers=2, task_overhead=0.0)
            rt.add_observer(records.append)
            rt.start()
            rt.submit("alpha", compute_body(rank, 1.0e9))
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        assert len(records) == 1
        rec = records[0]
        assert rec.name == "alpha"
        assert rec.duration == pytest.approx(1.0)
        assert rec.worker_index == 0
