"""Tests for the locality (affinity) ready queue."""

from repro.ompss import AccessMode, LocalityQueue, Task
from repro.simkit import Simulator


def make_task(sim, tid, regions):
    accesses = [(r, AccessMode.INOUT) for r in regions]
    return Task(tid, f"t{tid}", lambda w: iter(()), accesses, sim.event())


class TestLocalityQueue:
    def test_fifo_when_no_history(self):
        sim = Simulator()
        q = LocalityQueue()
        a = make_task(sim, 0, ["x"])
        b = make_task(sim, 1, ["y"])
        q.push(a)
        q.push(b)
        assert q.pop(0) is a

    def test_prefers_warm_region(self):
        sim = Simulator()
        q = LocalityQueue()
        first = make_task(sim, 0, [("band", 3)])
        q.push(first)
        assert q.pop(worker_index=0) is first  # worker 0 now warm on band 3
        cold = make_task(sim, 1, [("band", 1)])
        warm = make_task(sim, 2, [("band", 3)])
        q.push(cold)
        q.push(warm)
        assert q.pop(worker_index=0) is warm  # affinity beats FIFO order
        assert q.pop(worker_index=0) is cold

    def test_workers_have_independent_histories(self):
        sim = Simulator()
        q = LocalityQueue()
        t0 = make_task(sim, 0, ["a"])
        q.push(t0)
        assert q.pop(worker_index=0) is t0
        early = make_task(sim, 1, ["b"])
        warm_for_0 = make_task(sim, 2, ["a"])
        q.push(early)
        q.push(warm_for_0)
        # worker 1 has no history: plain FIFO.
        assert q.pop(worker_index=1) is early

    def test_anonymous_pop_is_fifo(self):
        sim = Simulator()
        q = LocalityQueue()
        a = make_task(sim, 0, ["x"])
        b = make_task(sim, 1, ["x"])
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert len(q) == 1

    def test_empty_pop(self):
        q = LocalityQueue()
        assert q.pop(0) is None

    def test_scan_window_bounds_search(self):
        sim = Simulator()
        q = LocalityQueue()
        t0 = make_task(sim, 0, ["warm"])
        q.push(t0)
        q.pop(worker_index=0)
        # Fill beyond the scan window with cold tasks, then a warm one.
        cold = [make_task(sim, i + 1, [("cold", i)]) for i in range(q.SCAN_WINDOW)]
        for t in cold:
            q.push(t)
        warm = make_task(sim, 99, ["warm"])
        q.push(warm)
        # The warm task sits outside the window: FIFO head is returned.
        assert q.pop(worker_index=0) is cold[0]
