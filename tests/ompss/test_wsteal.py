"""Tests for the work-stealing ready queue."""

import pytest

from repro.ompss import AccessMode, Task, WorkStealingQueue
from repro.simkit import Simulator


def make_task(sim, tid):
    return Task(tid, f"t{tid}", lambda w: iter(()), [(tid, AccessMode.INOUT)], sim.event())


@pytest.fixture()
def sim():
    return Simulator()


class TestWorkStealingQueue:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkStealingQueue(0)

    def test_round_robin_distribution(self, sim):
        q = WorkStealingQueue(2)
        tasks = [make_task(sim, i) for i in range(4)]
        for t in tasks:
            q.push(t)
        # Worker 0's deque got tasks 0, 2; pops its own LIFO.
        assert q.pop(0) is tasks[2]
        assert q.pop(0) is tasks[0]

    def test_own_deque_is_lifo(self, sim):
        q = WorkStealingQueue(1)
        a, b = make_task(sim, 0), make_task(sim, 1)
        q.push(a)
        q.push(b)
        assert q.pop(0) is b
        assert q.pop(0) is a

    def test_steal_is_fifo_from_largest_victim(self, sim):
        q = WorkStealingQueue(3)
        tasks = [make_task(sim, i) for i in range(6)]
        for t in tasks:
            q.push(t)  # worker0: 0,3; worker1: 1,4; worker2: 2,5
        # Empty worker 2's own deque.
        assert q.pop(2) is tasks[5]
        assert q.pop(2) is tasks[2]
        # Now worker 2 steals; victims tie at length 2, max() picks the
        # first — worker 0 — and steals its OLDEST task.
        assert q.pop(2) is tasks[0]

    def test_empty_pop(self, sim):
        q = WorkStealingQueue(2)
        assert q.pop(0) is None
        assert q.pop(None) is None

    def test_len_spans_all_deques(self, sim):
        q = WorkStealingQueue(3)
        for i in range(5):
            q.push(make_task(sim, i))
        assert len(q) == 5

    def test_anonymous_pop_uses_worker_zero(self, sim):
        q = WorkStealingQueue(2)
        t = make_task(sim, 0)
        q.push(t)  # lands on worker 0
        assert q.pop(None) is t

    def test_all_tasks_eventually_drain(self, sim):
        q = WorkStealingQueue(4)
        tasks = {make_task(sim, i) for i in range(20)}
        for t in tasks:
            q.push(t)
        popped = set()
        w = 0
        while len(q):
            got = q.pop(w % 4)
            assert got is not None
            popped.add(got)
            w += 1
        assert popped == tasks


class TestWorkStealingEndToEnd:
    def test_runtime_with_wsteal_policy(self, sim, rank):
        from tests.ompss.test_runtime import compute_body
        from repro.ompss import TaskRuntime

        def program(rank):
            rt = TaskRuntime(rank, n_workers=4, policy="wsteal", task_overhead=0.0)
            rt.start()
            for i in range(8):
                rt.submit(f"t{i}", compute_body(rank, 1.0e9), inouts=[("b", i)])
            yield rt.taskwait()
            yield rt.shutdown()

        sim.process(program(rank))
        sim.run()
        # 8 x 1s tasks over 4 workers with stealing: perfect 2 s makespan.
        assert sim.now == pytest.approx(2.0)
