"""Tests for wave data helpers and the pack/scatter marshalling."""

import numpy as np
import pytest

from repro.core.pack import pack_part_bytes, pack_parts, unpack_parts
from repro.core.scatter import (
    assemble_group_block_from_planes,
    assemble_planes,
    scatter_bw_parts,
    scatter_fw_parts,
    scatter_part_bytes,
)
from repro.core.vofr import apply_potential
from repro.core.wave import (
    distribute_coefficients,
    expand_group_block,
    expand_to_sticks,
    extract_from_sticks,
    extract_group_coefficients,
    make_band_coefficients,
    make_potential,
    potential_slab,
)
from repro.grids import Cell, DistributedLayout, FftDescriptor
from repro.mpisim import MetaPayload

RNG = np.random.default_rng(99)


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)


@pytest.fixture(scope="module")
def layout(desc):
    return DistributedLayout(desc, n_scatter=2, n_groups=2)


class TestWaveData:
    def test_coefficients_deterministic(self, desc):
        a = make_band_coefficients(desc.ngw, 4, seed=7)
        b = make_band_coefficients(desc.ngw, 4, seed=7)
        np.testing.assert_array_equal(a, b)
        c = make_band_coefficients(desc.ngw, 4, seed=8)
        assert not np.array_equal(a, c)

    def test_distribution_partitions_coefficients(self, desc, layout):
        coeffs = make_band_coefficients(desc.ngw, 3, seed=1)
        per_proc = distribute_coefficients(layout, coeffs)
        assert sum(p.shape[1] for p in per_proc) == desc.ngw
        total = np.concatenate([p[0] for p in per_proc])
        # Same multiset of values (order differs by ownership).
        np.testing.assert_allclose(
            np.sort(np.abs(total)), np.sort(np.abs(coeffs[0]))
        )

    def test_expand_extract_roundtrip(self, desc, layout):
        coeffs = make_band_coefficients(desc.ngw, 1, seed=3)
        per_proc = distribute_coefficients(layout, coeffs)
        for p in range(layout.P):
            block = expand_to_sticks(layout, p, per_proc[p][0])
            assert block.shape == (len(layout.sticks_of(p)), desc.nr3)
            back = extract_from_sticks(layout, p, block)
            np.testing.assert_allclose(back, per_proc[p][0])

    def test_expand_rejects_wrong_length(self, layout):
        with pytest.raises(ValueError, match="G-vectors"):
            expand_to_sticks(layout, 0, np.zeros(3, dtype=np.complex128))

    def test_extract_rejects_wrong_shape(self, layout):
        with pytest.raises(ValueError, match="expected"):
            extract_from_sticks(layout, 0, np.zeros((2, 2), dtype=np.complex128))

    def test_group_expand_extract_roundtrip(self, desc, layout):
        coeffs = make_band_coefficients(desc.ngw, 1, seed=5)
        per_proc = distribute_coefficients(layout, coeffs)
        for r in range(layout.R):
            members = [per_proc[layout.proc_of(r, t)][0] for t in range(layout.T)]
            block = expand_group_block(layout, r, members)
            assert block.shape == (layout.nst_group(r), desc.nr3)
            back = extract_group_coefficients(layout, r, block)
            for t in range(layout.T):
                np.testing.assert_allclose(back[t], members[t])

    def test_group_expansion_covers_whole_sphere(self, desc, layout):
        """Every sphere coefficient of the group lands in the block once."""
        coeffs = np.ones((1, desc.ngw), dtype=np.complex128)
        per_proc = distribute_coefficients(layout, coeffs)
        placed = 0
        for r in range(layout.R):
            members = [per_proc[layout.proc_of(r, t)][0] for t in range(layout.T)]
            block = expand_group_block(layout, r, members)
            placed += int(np.count_nonzero(block))
        assert placed == desc.ngw

    def test_potential_properties(self, desc):
        v = make_potential(desc.grid_shape, seed=1)
        assert v.shape == (desc.nr3, desc.nr1, desc.nr2)
        assert np.isrealobj(v)
        assert v.min() >= 1.0

    def test_potential_slabs_tile_grid(self, desc, layout):
        v = make_potential(desc.grid_shape, seed=1)
        slabs = [potential_slab(layout, r, v) for r in range(layout.R)]
        np.testing.assert_allclose(np.concatenate(slabs, axis=0), v)

    def test_potential_slab_shape_check(self, layout):
        with pytest.raises(ValueError, match="expected"):
            potential_slab(layout, 0, np.zeros((2, 2, 2)))


class TestPackMarshalling:
    def test_part_bytes_are_coefficient_sized(self, layout):
        for p in range(layout.P):
            assert pack_part_bytes(layout, p) == layout.ngw_of(p) * 16

    def test_meta_parts(self, layout):
        parts = pack_parts(layout, 0, None)
        assert len(parts) == layout.T
        assert all(isinstance(x, MetaPayload) for x in parts)
        assert parts[0].nbytes == pack_part_bytes(layout, 0)

    def test_data_parts_validated(self, layout):
        ngw = layout.ngw_of(0)
        good = [np.zeros(ngw, dtype=np.complex128)] * layout.T
        assert len(pack_parts(layout, 0, good)) == layout.T
        with pytest.raises(ValueError, match="band"):
            pack_parts(layout, 0, [np.zeros(ngw + 1, dtype=np.complex128)] * layout.T)
        with pytest.raises(ValueError, match="arrays"):
            pack_parts(layout, 0, [np.zeros(ngw, dtype=np.complex128)])

    def test_unpack_meta_parts_sized_per_member(self, layout):
        parts = unpack_parts(layout, 0, None)
        for t, part in enumerate(parts):
            assert part.nbytes == pack_part_bytes(layout, layout.proc_of(0, t))


class TestScatterMarshalling:
    def test_part_bytes(self, layout):
        assert scatter_part_bytes(layout, 0, 1) == (
            layout.nst_group(0) * layout.npp(1) * 16
        )

    def test_fw_roundtrip_through_planes(self, desc, layout):
        """fw parts -> planes -> bw parts -> group block reproduces the input."""
        blocks = {
            r: (
                RNG.standard_normal((layout.nst_group(r), desc.nr3))
                + 1j * RNG.standard_normal((layout.nst_group(r), desc.nr3))
            )
            for r in range(layout.R)
        }
        # Simulate the alltoall exchange by hand.
        fw_parts = {r: scatter_fw_parts(layout, r, blocks[r]) for r in range(layout.R)}
        planes = {
            r: assemble_planes(
                layout, r, [fw_parts[src][r] for src in range(layout.R)]
            )
            for r in range(layout.R)
        }
        bw_parts = {r: scatter_bw_parts(layout, r, planes[r]) for r in range(layout.R)}
        for r in range(layout.R):
            back = assemble_group_block_from_planes(
                layout, r, [bw_parts[src][r] for src in range(layout.R)]
            )
            np.testing.assert_allclose(back, blocks[r])

    def test_planes_zero_off_sticks(self, desc, layout):
        blocks = {
            r: np.ones((layout.nst_group(r), desc.nr3), dtype=np.complex128)
            for r in range(layout.R)
        }
        fw_parts = {r: scatter_fw_parts(layout, r, blocks[r]) for r in range(layout.R)}
        planes = assemble_planes(layout, 0, [fw_parts[src][0] for src in range(layout.R)])
        assert int(np.count_nonzero(planes[0])) == desc.sticks.nsticks

    def test_meta_mode_passthrough(self, layout):
        parts = scatter_fw_parts(layout, 0, None)
        assert all(isinstance(x, MetaPayload) for x in parts)
        assert assemble_planes(layout, 0, parts) is None
        assert assemble_group_block_from_planes(layout, 0, parts) is None

    def test_shape_validation(self, desc, layout):
        bad = [np.zeros((1, 1), dtype=np.complex128) for _ in range(layout.R)]
        with pytest.raises(ValueError, match="expected"):
            assemble_planes(layout, 0, bad)
        with pytest.raises(ValueError, match="expected"):
            assemble_group_block_from_planes(layout, 0, bad)


class TestVofr:
    def test_applies_pointwise(self):
        planes = np.full((2, 3, 3), 2.0 + 0j)
        v = np.full((2, 3, 3), 1.5)
        out = apply_potential(planes, v)
        np.testing.assert_allclose(out, 3.0)
        assert out is planes  # in place

    def test_meta_mode(self):
        assert apply_potential(None, None) is None

    def test_missing_potential_rejected(self):
        with pytest.raises(ValueError, match="potential"):
            apply_potential(np.zeros((1, 2, 2), dtype=complex), None)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="match"):
            apply_potential(np.zeros((1, 2, 2), dtype=complex), np.zeros((1, 3, 3)))
