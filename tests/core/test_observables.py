"""Tests for the physical observable <psi|V|psi> (G-space vs dense)."""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase
from repro.core.observables import potential_expectation, potential_expectation_dense

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestPotentialExpectation:
    @pytest.mark.parametrize("version", ["original", "ompss_perfft"])
    def test_gspace_matches_dense_definition(self, version):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version, data_mode=True)
        res = run_fft_phase(cfg)
        from_gspace = potential_expectation(res)
        from_dense = potential_expectation_dense(res)
        np.testing.assert_allclose(from_gspace, from_dense, rtol=1e-10)

    def test_real_and_positive(self):
        """V real and >= 1 everywhere -> every expectation real, positive,
        and at least the band's norm (in G space: sum |c|^2)."""
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, data_mode=True)
        res = run_fft_phase(cfg)
        e = potential_expectation(res)
        assert np.abs(e.imag).max() < 1e-10 * np.abs(e.real).max()
        norms = np.sum(np.abs(res.input_coeffs) ** 2, axis=1)
        assert np.all(e.real >= norms - 1e-8)

    def test_identical_across_executors(self):
        # Note: executors distribute over different rank counts, so the
        # per-rank partial sums accumulate in different orders — equality
        # here is up to floating-point associativity, not bitwise.
        values = []
        for version in ("original", "ompss_steps", "ompss_combined"):
            cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version, data_mode=True)
            values.append(potential_expectation(run_fft_phase(cfg)))
        np.testing.assert_allclose(values[1], values[0], rtol=1e-12)
        np.testing.assert_allclose(values[2], values[0], rtol=1e-12)

    def test_requires_data_mode(self):
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, data_mode=False)
        res = run_fft_phase(cfg)
        with pytest.raises(RuntimeError, match="data mode"):
            potential_expectation(res)
        with pytest.raises(RuntimeError, match="data mode"):
            potential_expectation_dense(res)
