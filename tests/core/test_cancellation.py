"""Cooperative cancellation: the driver's cancel/deadline hooks.

The service front end propagates per-request deadlines into workers as a
callable the simulator polls every ``INTERRUPT_STRIDE`` events.  These
tests pin the contract: cancellation raises :class:`RunCancelled` (never
a partial result), fires both before and during the event loop, and a
hook that never triggers leaves the run bit-identical.
"""

import time

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.core.driver import RunCancelled

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=2)


def config(**kwargs):
    return RunConfig(**SMALL, **kwargs)


class TestCancelHook:
    def test_immediate_cancel_raises_before_any_attempt(self):
        with pytest.raises(RunCancelled):
            run_fft_phase(config(), cancel=lambda: True)

    def test_mid_run_cancel_aborts_within_the_stride(self):
        calls = {"n": 0}

        def cancel_on_second_poll() -> bool:
            calls["n"] += 1
            return calls["n"] >= 2

        # Poll 1 is the pre-attempt check; the large grid dispatches enough
        # events that poll 2 comes from inside the event loop's stride.
        big = RunConfig(ecutwfc=30.0, alat=10.0, nbnd=32, ranks=2, taskgroups=2)
        with pytest.raises(RunCancelled):
            run_fft_phase(big, cancel=cancel_on_second_poll)
        assert calls["n"] == 2

    def test_never_firing_hook_changes_nothing(self):
        baseline = run_fft_phase(config())
        hooked = run_fft_phase(config(), cancel=lambda: False)
        assert hooked.phase_time == baseline.phase_time


class TestDeadlineHook:
    def test_past_deadline_raises(self):
        with pytest.raises(RunCancelled):
            run_fft_phase(config(), deadline=time.monotonic() - 1.0)

    def test_tight_deadline_aborts_a_large_run(self):
        big = RunConfig(
            ecutwfc=30.0, alat=10.0, nbnd=32, ranks=2, taskgroups=2
        )
        t0 = time.monotonic()
        with pytest.raises(RunCancelled):
            run_fft_phase(big, deadline=t0 + 0.002)
        # The stride-polled hook reacts promptly, not at attempt end.
        assert time.monotonic() - t0 < 1.0

    def test_generous_deadline_is_invisible(self):
        baseline = run_fft_phase(config())
        res = run_fft_phase(config(), deadline=time.monotonic() + 60.0)
        assert res.phase_time == baseline.phase_time
        assert not res.failed
