"""Unit tests for the data-plane workspace arena."""

import gc
import threading

import numpy as np
import pytest

from repro.core.workspace import (
    Workspace,
    aggregate_stats,
    layout_workspaces,
    workspace_for,
)
from repro.grids.descriptor import Cell, DistributedLayout, FftDescriptor


@pytest.fixture(scope="module")
def layout():
    desc = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
    return DistributedLayout(desc, n_scatter=2, n_groups=2)


class TestAcquireRelease:
    def test_acquire_properties(self):
        ws = Workspace()
        buf = ws.acquire("blk", (3, 5))
        assert buf.shape == (3, 5)
        assert buf.dtype == np.complex128
        assert buf.flags.c_contiguous
        other = ws.acquire("blk", (4,), dtype=np.float64)
        assert other.dtype == np.float64

    def test_release_then_acquire_reuses_object(self):
        ws = Workspace()
        buf = ws.acquire("blk", (8, 8))
        ws.release(buf)
        again = ws.acquire("blk", (8, 8))
        assert again is buf
        stats = ws.stats()
        assert stats["reuse_hits"] == 1
        assert stats["alloc_misses"] == 1
        assert stats["acquires"] == 2

    def test_pool_keys_separate_kind_shape_dtype(self):
        ws = Workspace()
        a = ws.acquire("a", (4, 4))
        ws.release(a)
        # Different kind, different shape, different dtype: none may reuse a.
        assert ws.acquire("b", (4, 4)) is not a
        assert ws.acquire("a", (4, 5)) is not a
        assert ws.acquire("a", (4, 4), dtype=np.complex64) is not a
        assert ws.acquire("a", (4, 4)) is a

    def test_pool_keys_separate_layout(self):
        # Regression (PR 8): pools were keyed (kind, shape, dtype) only, so
        # an SoA staging buffer could be recycled as an AoS buffer of the
        # same shape and dtype — planar real/imag planes aliasing an
        # interleaved complex block.  Layout is now part of the key.
        ws = Workspace()
        aos = ws.acquire("stage", (2, 8, 8))
        ws.release(aos)
        soa = ws.acquire("stage", (2, 8, 8), layout="soa")
        assert soa is not aos
        ws.release(soa)
        # Each layout reuses only its own pool.
        assert ws.acquire("stage", (2, 8, 8), layout="soa") is soa
        assert ws.acquire("stage", (2, 8, 8)) is aos
        # Byte accounting understands the widened key.
        assert ws.stats()["bytes_resident"] > 0

    def test_two_checkouts_are_distinct(self):
        ws = Workspace()
        a = ws.acquire("blk", (4,))
        b = ws.acquire("blk", (4,))
        assert a is not b

    def test_contents_unspecified_but_buffer_usable(self):
        ws = Workspace()
        buf = ws.acquire("blk", (16,))
        buf[:] = 7.0 + 1j
        ws.release(buf)
        again = ws.acquire("blk", (16,))
        again[:] = 0.0
        np.testing.assert_array_equal(again, np.zeros(16, dtype=np.complex128))


class TestTolerantRelease:
    def test_release_none_is_noop(self):
        ws = Workspace()
        ws.release(None, None)
        assert ws.stats()["foreign_releases"] == 0
        assert ws.stats()["releases"] == 0

    def test_release_foreign_array_counted_not_raised(self):
        ws = Workspace()
        ws.release(np.zeros(4, dtype=np.complex128))
        stats = ws.stats()
        assert stats["foreign_releases"] == 1
        assert stats["releases"] == 0
        assert stats["pooled"] == 0

    def test_double_release_counted_as_foreign(self):
        ws = Workspace()
        buf = ws.acquire("blk", (4,))
        ws.release(buf)
        ws.release(buf)
        stats = ws.stats()
        assert stats["releases"] == 1
        assert stats["foreign_releases"] == 1
        assert stats["pooled"] == 1  # not pooled twice

    def test_view_of_checked_out_buffer_is_foreign(self):
        ws = Workspace()
        buf = ws.acquire("blk", (4, 4))
        ws.release(buf[0])
        assert ws.stats()["foreign_releases"] == 1
        assert ws.stats()["live"] == 1

    def test_variadic_release(self):
        ws = Workspace()
        a = ws.acquire("blk", (4,))
        b = ws.acquire("blk", (4,))
        ws.release(a, None, b)
        stats = ws.stats()
        assert stats["releases"] == 2
        assert stats["live"] == 0


class TestLeakTolerance:
    def test_leaked_buffer_is_pruned_not_kept_alive(self):
        ws = Workspace()
        buf = ws.acquire("blk", (64,))
        assert ws.stats()["live"] == 1
        del buf
        gc.collect()
        ws.begin_run()  # prunes dead checkouts
        stats = ws.stats()
        assert stats["live"] == 0
        assert stats["live_peak"] == 0
        # The leaked buffer never re-enters the pool.
        assert stats["pooled"] == 0

    def test_bytes_resident_tracks_pool_and_checkouts(self):
        ws = Workspace()
        buf = ws.acquire("blk", (8,))  # 8 * 16 bytes
        assert ws.stats()["bytes_resident"] == 128
        ws.release(buf)
        assert ws.stats()["bytes_resident"] == 128  # pooled now
        del buf
        gc.collect()
        assert ws.stats()["bytes_resident"] == 128  # pool keeps it alive


class TestPeakTracking:
    def test_live_peak_and_begin_run_reset(self):
        ws = Workspace()
        bufs = [ws.acquire("blk", (4,)) for _ in range(3)]
        assert ws.stats()["live_peak"] == 3
        ws.release(*bufs)
        assert ws.stats()["live_peak"] == 3  # sticky within a run
        ws.begin_run()
        assert ws.stats()["live_peak"] == 0
        one = ws.acquire("blk", (4,))
        assert ws.stats()["live_peak"] == 1
        ws.release(one)


class TestLayoutAttachment:
    def test_workspace_for_is_per_layout_process(self, layout):
        a = workspace_for(layout, 0)
        assert workspace_for(layout, 0) is a
        assert workspace_for(layout, 1) is not a

    def test_layout_workspaces_snapshot(self, layout):
        workspace_for(layout, 0)
        workspace_for(layout, 3)
        snap = layout_workspaces(layout)
        assert set(snap) >= {0, 3}
        assert snap[0] is workspace_for(layout, 0)

    def test_fresh_layout_has_no_arenas(self):
        desc = FftDescriptor(Cell(alat=5.0), ecutwfc=8.0)
        fresh = DistributedLayout(desc, n_scatter=2, n_groups=1)
        assert layout_workspaces(fresh) == {}

    def test_aggregate_stats_sums(self):
        a, b = Workspace(), Workspace()
        a.release(a.acquire("x", (4,)))
        b.acquire("y", (2,))
        total = aggregate_stats([a, b])
        assert total["acquires"] == 2
        assert total["releases"] == 1
        assert total["live"] == 1
        assert aggregate_stats([]) == {}


class TestThreadSafety:
    def test_hammer_no_double_ownership(self):
        ws = Workspace()
        errors: list[str] = []
        barrier = threading.Barrier(8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            held = []
            for _ in range(200):
                if held and rng.random() < 0.5:
                    buf = held.pop()
                    # Ownership check: our sentinel must still be intact —
                    # nobody else may have been handed this buffer.
                    if buf[0] != complex(seed):
                        errors.append("buffer handed to two owners")
                    ws.release(buf)
                else:
                    buf = ws.acquire("blk", (32,))
                    buf[0] = complex(seed)
                    held.append(buf)
            ws.release(*held)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = ws.stats()
        assert stats["live"] == 0
        assert stats["acquires"] == stats["releases"]
        assert stats["foreign_releases"] == 0
