"""Tests for the Gamma-point two-real-bands-per-FFT trick."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma import (
    hermitian_coefficients,
    is_hermitian,
    pack_real_bands,
    unpack_real_bands,
)
from repro.core.validate import dense_reference
from repro.core.wave import make_potential
from repro.fft import invfft
from repro.grids import Cell, FftDescriptor


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)


@pytest.fixture(scope="module")
def minus_idx(desc):
    return desc.sphere.minus_index()


class TestMinusIndex:
    def test_is_involution(self, desc, minus_idx):
        np.testing.assert_array_equal(minus_idx[minus_idx], np.arange(desc.ngw))

    def test_maps_to_negated_millers(self, desc, minus_idx):
        np.testing.assert_array_equal(
            desc.sphere.millers[minus_idx], -desc.sphere.millers
        )

    def test_gamma_is_fixed_point(self, desc, minus_idx):
        g0 = int(np.flatnonzero((desc.sphere.millers == 0).all(axis=1))[0])
        assert minus_idx[g0] == g0


class TestHermitianCoefficients:
    def test_generated_sets_are_hermitian(self, desc, minus_idx):
        c = hermitian_coefficients(desc.ngw, minus_idx, 4, seed=3)
        assert c.shape == (4, desc.ngw)
        assert is_hermitian(c, minus_idx)

    def test_hermitian_means_real_in_real_space(self, desc, minus_idx):
        """The defining property: the band's real-space field is real."""
        c = hermitian_coefficients(desc.ngw, minus_idx, 1, seed=5)[0]
        field = np.zeros(desc.grid_shape, dtype=np.complex128)
        idx = desc.grid_idx
        field[idx[:, 0], idx[:, 1], idx[:, 2]] = c
        for axis in range(3):
            field = invfft(field, axis=axis)
        assert np.abs(field.imag).max() < 1e-10 * np.abs(field.real).max()

    def test_shape_validation(self, minus_idx):
        with pytest.raises(ValueError, match="minus_index"):
            hermitian_coefficients(3, minus_idx, 1, seed=0)

    def test_is_hermitian_detects_violation(self, desc, minus_idx):
        c = hermitian_coefficients(desc.ngw, minus_idx, 1, seed=1)
        c[0, 1] += 1.0  # break the symmetry
        assert not is_hermitian(c, minus_idx)


class TestPackUnpack:
    def test_roundtrip(self, desc, minus_idx):
        bands = hermitian_coefficients(desc.ngw, minus_idx, 2, seed=9)
        psi = pack_real_bands(bands[0], bands[1])
        r1, r2 = unpack_real_bands(psi, minus_idx)
        np.testing.assert_allclose(r1, bands[0], atol=1e-14)
        np.testing.assert_allclose(r2, bands[1], atol=1e-14)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            pack_real_bands(np.zeros(3, complex), np.zeros(4, complex))
        with pytest.raises(ValueError, match="coefficients"):
            unpack_real_bands(np.zeros(3, complex), np.arange(4))

    def test_unpack_commutes_with_vofr_operator(self, desc, minus_idx):
        """The paper's actual usage: pack two real bands, run the full
        forward-V(r)-backward kernel once, unpack — and get exactly what two
        separate per-band applications give."""
        bands = hermitian_coefficients(desc.ngw, minus_idx, 2, seed=11)
        potential = make_potential(desc.grid_shape, seed=11)
        psi = pack_real_bands(bands[0], bands[1])

        packed_out = dense_reference(desc, psi[None, :], potential)[0]
        out1, out2 = unpack_real_bands(packed_out, minus_idx)

        separate = dense_reference(desc, bands, potential)
        np.testing.assert_allclose(out1, separate[0], atol=1e-12)
        np.testing.assert_allclose(out2, separate[1], atol=1e-12)

    def test_operator_preserves_hermitian_symmetry(self, desc, minus_idx):
        """V real in real space -> the output bands remain real bands."""
        bands = hermitian_coefficients(desc.ngw, minus_idx, 2, seed=13)
        potential = make_potential(desc.grid_shape, seed=13)
        out = dense_reference(desc, bands, potential)
        assert is_hermitian(out, minus_idx, tol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_pack_unpack_property(self, desc, minus_idx, seed):
        bands = hermitian_coefficients(desc.ngw, minus_idx, 2, seed=seed)
        psi = pack_real_bands(bands[0], bands[1])
        r1, r2 = unpack_real_bands(psi, minus_idx)
        np.testing.assert_allclose(r1, bands[0], atol=1e-12)
        np.testing.assert_allclose(r2, bands[1], atol=1e-12)
