"""Integration tests for multi-node runs (cluster network + per-node CPUs)."""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase
from repro.mpisim.network import ClusterNetworkModel

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestMultiNodeRuns:
    @pytest.mark.parametrize("version", ["original", "ompss_perfft", "ompss_steps"])
    def test_numerics_survive_the_fabric(self, version):
        cfg = RunConfig(
            **SMALL, ranks=4, taskgroups=2, version=version, data_mode=True, n_nodes=2
        )
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12

    def test_results_identical_to_single_node(self):
        outs = []
        for n_nodes in (1, 2):
            cfg = RunConfig(
                **SMALL, ranks=4, taskgroups=2, data_mode=True, n_nodes=n_nodes
            )
            outs.append(run_fft_phase(cfg).output_coefficients())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_fabric_carries_cross_node_traffic_only(self):
        cfg = RunConfig(**SMALL, ranks=4, taskgroups=2, n_nodes=2)
        res = run_fft_phase(cfg)
        net = res.world.network
        assert isinstance(net, ClusterNetworkModel)
        assert 0 < net.inter_bytes < net.bytes_transferred

    def test_single_node_never_touches_fabric(self):
        cfg = RunConfig(**SMALL, ranks=4, taskgroups=2, n_nodes=1)
        res = run_fft_phase(cfg)
        assert not isinstance(res.world.network, ClusterNetworkModel)

    def test_pack_groups_stay_on_node(self):
        """With ranks-per-node a multiple of T, pack traffic is intra-node —
        only the scatter crosses the fabric (the production launcher layout)."""
        from repro.perf.tracer import trace_run

        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, n_nodes=2)
        # 4 procs over 2 nodes: packs {0,1} and {2,3}; scatters {0,2}, {1,3}.
        res, trace = trace_run(cfg)
        net = res.world.network
        assert net.inter_bytes > 0
        pack_bytes = sum(
            r.bytes_sent for r in trace.mpi if r.comm_name.startswith("pack")
        )
        scatter_bytes = sum(
            r.bytes_sent for r in trace.mpi if r.comm_name.startswith("scatter")
        )
        # Everything the fabric saw must be scatter traffic.
        assert net.inter_bytes <= scatter_bytes + 1e-9
        assert pack_bytes > 0

    def test_slower_fabric_slows_the_run(self):
        import dataclasses

        from repro.machine import knl_parameters

        cfg = RunConfig(**SMALL, ranks=4, taskgroups=2, n_nodes=2)
        fast = run_fft_phase(cfg).phase_time
        slow_knl = dataclasses.replace(
            knl_parameters(), fabric_injection_bw=1e7, fabric_latency=1e-4
        )
        slow = run_fft_phase(cfg, knl=slow_knl).phase_time
        assert slow > fast * 1.5

    def test_uneven_rank_distribution_rejected(self):
        with pytest.raises(ValueError, match="evenly"):
            RunConfig(**SMALL, ranks=3, taskgroups=1, n_nodes=2)

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ValueError, match="n_nodes"):
            RunConfig(**SMALL, taskgroups=2, n_nodes=0)
