"""Structural correspondence with the paper's code listings (Figs. 1, 4, 5).

Fig. 1 gives the kernel's step order; these tests assert that the traced
execution of each executor realizes exactly that structure — step sequence
per stream for the original, per-step task graphs for Opt 1, one task per
FFT for Opt 2.
"""

import pytest

from repro.core import RunConfig
from repro.perf.tracer import trace_run

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)

#: Fig. 1's loop body, as phase names (MPI calls interleave around them).
FIG1_COMPUTE_SEQUENCE = [
    "prepare_psis",    # pack NTG bands (the Psi preparation)
    "pack_sticks",     # expansion around the pack Alltoallv
    "fft_z",           # multi-band FW-FFT along Z
    "scatter_reorder", # multi-band scatter (fw)
    "fft_xy",          # multi-band FW-FFT along XY
    "vofr",            # VOFR
    "fft_xy",          # multi-band BW-FFT along XY
    "scatter_reorder", # multi-band scatter (bw)
    "fft_z",           # multi-band BW-FFT along Z
    "unpack_sticks",   # extraction around the unpack Alltoallv
    "unpack_sticks",
]


class TestFig1Original:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="original")
        _res, trace = trace_run(cfg)
        return trace

    def test_step_sequence_matches_fig1(self, trace):
        seq = [r.phase for r in trace.compute_of((0, 0))]
        n_iterations = 2  # nbnd/2=4 complex bands / T=2
        assert seq == FIG1_COMPUTE_SEQUENCE * n_iterations

    def test_mpi_sequence_interleaves_two_layers(self, trace):
        calls = [(r.call, r.comm_name.rstrip("0123456789")) for r in trace.mpi_of((0, 0))]
        per_iteration = [
            ("alltoallw", "pack"),     # pack NTG bands (pack-free datatypes)
            ("alltoallw", "scatter"),  # fw scatter
            ("alltoallw", "scatter"),  # bw scatter
            ("alltoallw", "pack"),     # unpack NTG bands
        ]
        assert calls == per_iteration * 2

    def test_every_stream_runs_the_same_program(self, trace):
        sequences = {
            stream: tuple(r.phase for r in trace.compute_of(stream))
            for stream in trace.streams
        }
        assert len(set(sequences.values())) == 1


class TestFig5PerFft:
    def test_one_task_per_fft(self):
        """Fig. 5: each loop iteration (one complex band FFT) is one task."""
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="ompss_perfft")
        _res, trace = trace_run(cfg)
        per_rank: dict[int, list] = {}
        for rank, rec in trace.tasks:
            per_rank.setdefault(rank, []).append(rec.name)
        for rank, names in per_rank.items():
            assert sorted(names) == [f"fft_band{b}" for b in range(4)], rank

    def test_tasks_are_independent(self):
        """No task ever waits on another task's region (distinct bands)."""
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, version="ompss_perfft")
        res, trace = trace_run(cfg)
        # All bands' tasks started before any finished would be the extreme
        # proof; weaker but schedule-robust: with 2 workers and 4 bands,
        # at least two tasks overlap in time on every rank.
        spans = [
            (rec.started_at, rec.finished_at) for _r, rec in trace.tasks
        ]
        overlaps = sum(
            1
            for i, (s1, e1) in enumerate(spans)
            for s2, _e2 in spans[i + 1:]
            if s1 < s2 < e1
        )
        assert overlaps >= 1


class TestFig4PerStep:
    def test_step_tasks_created(self):
        """Fig. 4: every pipeline step of every iteration is a task."""
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version="ompss_steps")
        _res, trace = trace_run(cfg)
        names = [rec.name for rank, rec in trace.tasks if rank == 0]
        for step in ("prepare", "pack", "fft_z_fw", "scatter_fw", "fft_xy_fw",
                     "vofr", "fft_xy_bw", "scatter_bw", "fft_z_bw", "unpack"):
            assert any(n.startswith(step) for n in names), step

    def test_flow_dependency_orders_steps_within_iteration(self):
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, version="ompss_steps")
        _res, trace = trace_run(cfg)
        recs = {rec.name: rec for rank, rec in trace.tasks if rank == 0}
        it0 = [recs[n] for n in recs if str(("it", 0)) in n]
        prepare = next(r for r in it0 if r.name.startswith("prepare"))
        unpack = next(r for r in it0 if r.name.startswith("unpack"))
        assert prepare.finished_at <= unpack.started_at
