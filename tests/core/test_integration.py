"""Integration tests: every executor, every shape, validated against the
dense reference — and all executors must agree bit-for-bit on the numerics.
"""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


def small_config(**kwargs):
    merged = {**SMALL, **kwargs}
    return RunConfig(**merged)


class TestCorrectness:
    @pytest.mark.parametrize(
        "version",
        ["original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"],
    )
    def test_all_versions_match_dense_reference(self, version):
        cfg = small_config(ranks=2, taskgroups=2, version=version, data_mode=True)
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12

    @pytest.mark.parametrize(
        "ranks,taskgroups",
        [(1, 1), (1, 4), (4, 1), (2, 2), (3, 2), (2, 4)],
    )
    def test_original_over_process_grids(self, ranks, taskgroups):
        cfg = small_config(ranks=ranks, taskgroups=taskgroups, version="original", data_mode=True)
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_perfft_over_rank_counts(self, ranks):
        cfg = small_config(ranks=ranks, taskgroups=4, version="ompss_perfft", data_mode=True)
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12

    def test_all_versions_agree_exactly(self):
        """Identical inputs -> identical outputs regardless of executor."""
        outputs = {}
        for version in ["original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"]:
            cfg = small_config(ranks=2, taskgroups=2, version=version, data_mode=True)
            outputs[version] = run_fft_phase(cfg).output_coefficients()
        base = outputs.pop("original")
        for version, out in outputs.items():
            np.testing.assert_array_equal(out, base, err_msg=version)

    def test_schedule_invariance(self):
        """LIFO and FIFO schedules must not change the numerics."""
        outs = []
        for policy in ("fifo", "lifo"):
            cfg = small_config(
                ranks=2, taskgroups=2, version="ompss_combined", data_mode=True, scheduler=policy
            )
            outs.append(run_fft_phase(cfg).output_coefficients())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_seed_changes_data(self):
        a = run_fft_phase(small_config(ranks=1, taskgroups=2, data_mode=True, seed=1))
        b = run_fft_phase(small_config(ranks=1, taskgroups=2, data_mode=True, seed=2))
        assert not np.array_equal(a.output_coefficients(), b.output_coefficients())

    def test_single_process_single_group(self):
        """The fully serial degenerate case still works end to end."""
        cfg = small_config(ranks=1, taskgroups=1, version="original", data_mode=True)
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12


class TestMetaDataModeConsistency:
    def test_same_event_structure(self):
        """Meta mode must execute the same instructions as data mode."""
        times, instrs = [], []
        for data_mode in (True, False):
            cfg = small_config(ranks=2, taskgroups=2, version="original", data_mode=data_mode)
            res = run_fft_phase(cfg)
            times.append(res.phase_time)
            instrs.append(res.cpu.counters.total_instructions())
        assert times[0] == pytest.approx(times[1], rel=1e-12)
        assert instrs[0] == pytest.approx(instrs[1], rel=1e-12)

    def test_meta_mode_has_no_outputs(self):
        res = run_fft_phase(small_config(ranks=1, taskgroups=2, data_mode=False))
        with pytest.raises(RuntimeError, match="data mode"):
            res.output_coefficients()
        with pytest.raises(RuntimeError, match="data mode"):
            res.validate()


class TestRunResult:
    def test_counters_cover_all_streams(self):
        cfg = small_config(ranks=2, taskgroups=2, version="original")
        res = run_fft_phase(cfg)
        assert len(res.cpu.counters.streams) == cfg.total_streams

    def test_phase_time_positive_and_finite(self):
        res = run_fft_phase(small_config(ranks=2, taskgroups=2))
        assert 0 < res.phase_time < 10.0

    def test_observers_wired(self):
        mpi_calls, compute_recs, task_recs = [], [], []
        cfg = small_config(ranks=2, taskgroups=2, version="ompss_perfft")
        run_fft_phase(
            cfg,
            mpi_observer=mpi_calls.append,
            compute_observer=compute_recs.append,
            task_observer=lambda rank, rec: task_recs.append((rank, rec)),
        )
        assert any(r.call in ("alltoall", "alltoallw") for r in mpi_calls)
        assert any(r.phase == "fft_xy" for r in compute_recs)
        assert len(task_recs) == cfg.n_complex_bands * cfg.n_mpi_ranks

    def test_contexts_sorted_by_rank(self):
        res = run_fft_phase(small_config(ranks=2, taskgroups=2))
        assert [ctx.p for ctx in res.contexts] == list(range(4))


class TestPerformanceShape:
    """Cheap versions of the paper's qualitative claims on the small workload
    (the full-workload claims live in the benchmark harness)."""

    def test_more_ranks_reduce_runtime_serial_region(self):
        # Disable the per-message MPI-stack instructions: on this toy
        # workload they dominate and strong scaling genuinely inverts
        # (realistic, but not what this test probes).
        from repro.core import CostConstants

        cc = CostConstants(instr_per_message=0.0)
        t1 = run_fft_phase(small_config(ranks=1, taskgroups=2), cost_constants=cc).phase_time
        t4 = run_fft_phase(small_config(ranks=4, taskgroups=2), cost_constants=cc).phase_time
        assert t4 < t1

    def test_original_does_not_scale_linearly(self):
        """The paper's headline problem: poor scaling of the FFT phase."""
        t1 = run_fft_phase(small_config(ranks=1, taskgroups=2)).phase_time
        t4 = run_fft_phase(small_config(ranks=4, taskgroups=2)).phase_time
        assert t1 / t4 < 4.0
