"""Property tests: the distributed kernel is correct for arbitrary shapes.

Hypothesis drives workload geometry (cutoff, cell), process grids, and
executors; every combination must reproduce the dense reference.  This is
the strongest statement the suite makes about the pipeline's index
bookkeeping (sticks, group segments, plane slabs, scatter coordinates).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RunConfig, run_fft_phase


@st.composite
def workload_and_grid(draw):
    ecut = draw(st.sampled_from([8.0, 12.0, 18.0]))
    alat = draw(st.sampled_from([4.0, 5.0, 6.5]))
    ranks = draw(st.integers(min_value=1, max_value=3))
    taskgroups = draw(st.sampled_from([1, 2, 4]))
    version = draw(
        st.sampled_from(["original", "ompss_perfft", "ompss_steps", "ompss_combined"])
    )
    # nbnd/2 complex bands must split evenly into groups of `taskgroups`.
    nbnd = 2 * taskgroups * draw(st.integers(min_value=1, max_value=2))
    return dict(
        ecutwfc=ecut,
        alat=alat,
        ranks=ranks,
        taskgroups=taskgroups,
        version=version,
        nbnd=nbnd,
    )


class TestPipelineProperties:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(params=workload_and_grid())
    def test_any_shape_matches_dense_reference(self, params):
        cfg = RunConfig(data_mode=True, **params)
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-11, params

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=99),
        ranks=st.integers(min_value=1, max_value=3),
    )
    def test_runtime_independent_of_data_content(self, seed, ranks):
        """The cost model must not depend on the data values: different
        seeds, identical phase time (data mode)."""
        times = set()
        for s in (seed, seed + 1000):
            cfg = RunConfig(
                ecutwfc=12.0, alat=5.0, nbnd=8, ranks=ranks, taskgroups=2,
                data_mode=True, seed=s,
            )
            times.add(round(run_fft_phase(cfg).phase_time, 15))
        assert len(times) == 1

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(taskgroups=st.sampled_from([1, 2, 4, 8]))
    def test_result_independent_of_taskgroup_count(self, taskgroups):
        """ntg is a performance knob; it must never change the numerics."""
        cfg = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=16, ranks=1, taskgroups=taskgroups,
            data_mode=True,
        )
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12
