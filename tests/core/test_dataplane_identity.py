"""The arena is an optimization, never a semantic layer.

Every test here pins the data-plane contract: runs with the workspace arena
enabled are *byte-identical* (outputs and simulated timing) to runs with
fresh allocations, across executors, process grids, and warm reruns; the
cached index maps equal a from-scratch recompute; and the no-copy marshal
paths really do avoid copies.
"""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase
from repro.core.pack import pack_parts
from repro.core.wave import distribute_coefficients, make_band_coefficients
from repro.core.workspace import aggregate_stats, layout_workspaces
from repro.grids.descriptor import Cell, DistributedLayout, FftDescriptor
from repro.telemetry.manifest import build_manifest, validate_manifest

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


def small_config(**kwargs):
    return RunConfig(**{**SMALL, **kwargs})


def as_bytes(x):
    return np.ascontiguousarray(x).view(np.float64)


GRID_CASES = [
    ("original", 4, 2),
    ("pipelined", 4, 2),
    ("ompss_steps", 4, 2),
    ("ompss_perfft", 4, 1),
    ("ompss_combined", 4, 1),
    ("original", 4, 1),
]


class TestArenaIdentity:
    @pytest.mark.parametrize("version,taskgroups,ranks", GRID_CASES)
    def test_arena_matches_fresh_allocation(self, version, taskgroups, ranks):
        cfg = small_config(
            ranks=ranks, taskgroups=taskgroups, version=version, data_mode=True
        )
        fresh = run_fft_phase(cfg, use_workspace=False)
        arena = run_fft_phase(cfg, use_workspace=True)
        np.testing.assert_array_equal(
            as_bytes(arena.output_coefficients()),
            as_bytes(fresh.output_coefficients()),
        )
        assert arena.phase_time == fresh.phase_time

    @pytest.mark.parametrize("version", ["original", "pipelined", "ompss_steps"])
    def test_warm_rerun_identical(self, version):
        """A second run reuses pooled buffers; stale contents must not leak
        into any band (full-overwrite discipline)."""
        cfg = small_config(ranks=2, taskgroups=4, version=version, data_mode=True)
        first = run_fft_phase(cfg, use_workspace=True)
        second = run_fft_phase(cfg, use_workspace=True)
        np.testing.assert_array_equal(
            as_bytes(first.output_coefficients()),
            as_bytes(second.output_coefficients()),
        )
        # The warm run should actually have recycled buffers.
        assert second.dataplane["reuse_hits"] > 0

    def test_seed_isolation_under_arena(self):
        """Pooled buffers from seed A must not contaminate a seed-B run."""
        cfg_a = small_config(ranks=2, taskgroups=2, data_mode=True, seed=1)
        cfg_b = small_config(ranks=2, taskgroups=2, data_mode=True, seed=2)
        run_fft_phase(cfg_a, use_workspace=True)  # warm the pools
        warm_b = run_fft_phase(cfg_b, use_workspace=True)
        cold_b = run_fft_phase(cfg_b, use_workspace=False)
        np.testing.assert_array_equal(
            as_bytes(warm_b.output_coefficients()),
            as_bytes(cold_b.output_coefficients()),
        )

    @pytest.mark.parametrize(
        "version",
        ["original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"],
    )
    def test_dense_reference_roundtrip(self, version):
        """Batched marshalling + arena still matches the dense cfft3d chain."""
        cfg = small_config(ranks=2, taskgroups=2, version=version, data_mode=True)
        res = run_fft_phase(cfg, use_workspace=True)
        assert res.validate() < 1e-12


class TestIndexMapCaching:
    @pytest.fixture(scope="class")
    def layouts(self):
        desc_a = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
        desc_b = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
        return (
            DistributedLayout(desc_a, n_scatter=2, n_groups=2),
            DistributedLayout(desc_b, n_scatter=2, n_groups=2),
        )

    def test_cached_maps_equal_fresh_recompute(self, layouts):
        warm, cold = layouts
        # Warm every cache, then compare against the untouched twin layout.
        for p in range(warm.P):
            warm.local_flat_index(p)
            warm.local_g_table(p)
        for r in range(warm.R):
            warm.group_flat_index(r)
            warm.group_coeff_offsets(r)
        warm.scatter_plane_index()
        for p in range(warm.P):
            np.testing.assert_array_equal(
                warm.local_flat_index(p), cold.local_flat_index(p)
            )
            for a, b in zip(warm.local_g_table(p), cold.local_g_table(p)):
                np.testing.assert_array_equal(a, b)
        for r in range(warm.R):
            np.testing.assert_array_equal(
                warm.group_flat_index(r), cold.group_flat_index(r)
            )
            np.testing.assert_array_equal(
                warm.group_coeff_offsets(r), cold.group_coeff_offsets(r)
            )
        np.testing.assert_array_equal(
            warm.scatter_plane_index(), cold.scatter_plane_index()
        )

    def test_maps_cached_by_identity(self, layouts):
        layout, _ = layouts
        assert layout.local_flat_index(0) is layout.local_flat_index(0)
        assert layout.group_flat_index(0) is layout.group_flat_index(0)
        assert layout.scatter_plane_index() is layout.scatter_plane_index()

    def test_flat_index_consistent_with_g_table(self, layouts):
        layout, _ = layouts
        nr3 = layout.desc.nr3
        for p in range(layout.P):
            _g, stick_local, iz = layout.local_g_table(p)
            np.testing.assert_array_equal(
                layout.local_flat_index(p), stick_local * nr3 + iz
            )


class TestNoCopyMarshalling:
    @pytest.fixture(scope="class")
    def layout(self):
        desc = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
        return DistributedLayout(desc, n_scatter=2, n_groups=2)

    def test_pack_parts_passes_arrays_through_uncopied(self, layout):
        p = 0
        ngw = layout.ngw_of(p)
        bands = [
            np.arange(ngw, dtype=np.complex128) * (t + 1) for t in range(layout.T)
        ]
        parts = pack_parts(layout, p, bands)
        for t in range(layout.T):
            assert parts[t] is bands[t]

    def test_distribute_coefficients_rows_fresh_and_contiguous(self, layout):
        coeffs = make_band_coefficients(layout.desc.ngw, 4, seed=0)
        per_proc = distribute_coefficients(layout, coeffs)
        assert len(per_proc) == layout.P
        for p, arr in enumerate(per_proc):
            assert arr.shape == (4, layout.ngw_of(p))
            assert arr.flags.c_contiguous
            # Fresh storage: mutating the split must not touch the source.
            assert not np.shares_memory(arr, coeffs)


class TestDataplaneStats:
    def test_data_mode_run_reports_dataplane(self):
        cfg = small_config(ranks=2, taskgroups=2, data_mode=True)
        res = run_fft_phase(cfg, use_workspace=True)
        dp = res.dataplane
        assert dp is not None
        assert dp["acquires"] > 0
        # Balanced checkouts: nothing left live after a clean run.
        assert dp["live"] == 0
        assert dp["acquires"] == dp["releases"]
        assert dp["allocations_avoided"] == dp["reuse_hits"]
        assert dp["bytes_resident"] > 0
        assert dp["live_peak"] > 0

    def test_meta_mode_and_disabled_have_no_dataplane(self):
        meta = run_fft_phase(small_config(ranks=2, taskgroups=2, data_mode=False))
        assert meta.dataplane is None
        off = run_fft_phase(
            small_config(ranks=2, taskgroups=2, data_mode=True),
            use_workspace=False,
        )
        assert off.dataplane is None

    def test_arenas_attach_to_layout_and_balance(self):
        cfg = small_config(ranks=2, taskgroups=2, data_mode=True)
        res = run_fft_phase(cfg, use_workspace=True)
        arenas = layout_workspaces(res.layout)
        assert set(arenas) == set(range(res.layout.P))
        total = aggregate_stats(arenas.values())
        assert total["live"] == 0
        assert total["acquires"] == total["releases"]

    def test_dataplane_gauges_exported_to_telemetry(self):
        cfg = small_config(ranks=2, taskgroups=2, data_mode=True, telemetry=True)
        res = run_fft_phase(cfg, use_workspace=True)
        snapshot = res.telemetry.metrics.snapshot()
        for name in ("dataplane.acquires", "dataplane.reuse_hits", "dataplane.live"):
            assert name in snapshot, name
            assert snapshot[name]["kind"] == "gauge"

    def test_manifest_carries_dataplane_section(self):
        cfg = small_config(ranks=2, taskgroups=2, data_mode=True, telemetry=True)
        res = run_fft_phase(cfg, use_workspace=True)
        manifest = build_manifest(res, wall_time_s=0.1)
        assert validate_manifest(manifest) == []
        assert manifest["dataplane"] == res.dataplane

    def test_manifest_omits_dataplane_when_disabled(self):
        cfg = small_config(ranks=2, taskgroups=2, data_mode=True, telemetry=True)
        res = run_fft_phase(cfg, use_workspace=False)
        manifest = build_manifest(res, wall_time_s=0.1)
        assert validate_manifest(manifest) == []
        assert "dataplane" not in manifest
