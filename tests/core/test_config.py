"""Tests for RunConfig validation and derived execution parameters."""

import pytest

from repro.core import RunConfig


class TestValidation:
    def test_paper_defaults(self):
        cfg = RunConfig()
        assert cfg.ecutwfc == 80.0
        assert cfg.alat == 20.0
        assert cfg.nbnd == 128
        assert cfg.taskgroups == 8
        assert cfg.n_complex_bands == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"version": "nope"},
            {"nbnd": 0},
            {"nbnd": 7},
            {"ranks": 0},
            {"taskgroups": 0},
            {"nbnd": 12, "taskgroups": 4},  # 6 complex bands not divisible by 4
            {"steps_workers": 0},
            {"grainsize_xy": 0},
            {"grainsize_z": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)


class TestDerived:
    def test_original_mapping(self):
        cfg = RunConfig(ranks=8, taskgroups=8, version="original")
        assert cfg.n_mpi_ranks == 64
        assert cfg.threads_per_rank == 1
        assert cfg.layout_scatter == 8
        assert cfg.layout_groups == 8
        assert cfg.bands_in_flight == 8
        assert cfg.n_iterations == 8
        assert cfg.total_streams == 64
        assert not cfg.is_task_version

    def test_perfft_mapping(self):
        """The OmpSs version: N ranks, 8 threads replacing the task groups."""
        cfg = RunConfig(ranks=8, taskgroups=8, version="ompss_perfft")
        assert cfg.n_mpi_ranks == 8
        assert cfg.threads_per_rank == 8
        assert cfg.layout_groups == 1  # ntg off
        assert cfg.n_iterations == 64  # one task per complex band
        assert cfg.total_streams == 64
        assert cfg.is_task_version

    def test_steps_mapping(self):
        cfg = RunConfig(ranks=4, taskgroups=8, version="ompss_steps", steps_workers=2)
        assert cfg.n_mpi_ranks == 32
        assert cfg.threads_per_rank == 2
        assert cfg.layout_groups == 8  # keeps the task groups
        assert cfg.total_streams == 64

    def test_combined_mapping(self):
        cfg = RunConfig(ranks=8, taskgroups=8, version="ompss_combined")
        assert cfg.n_mpi_ranks == 8
        assert cfg.threads_per_rank == 8
        assert cfg.layout_groups == 1

    def test_hyperthreading_configs(self):
        """16x8 and 32x8 oversubscribe the 68-core node with 2 and 4 HT."""
        assert RunConfig(ranks=16, version="original").total_streams == 128
        assert RunConfig(ranks=32, version="original").total_streams == 256

    def test_label(self):
        assert RunConfig(ranks=8).label() == "8x8 original"
