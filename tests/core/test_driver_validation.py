"""Failure-injection tests for the driver's input validation and guards."""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase
from repro.core.validate import gather_results
from repro.grids import Cell, DistributedLayout, FftDescriptor

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestDriverValidation:
    def test_caller_data_requires_data_mode(self):
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, data_mode=False)
        with pytest.raises(ValueError, match="data_mode"):
            run_fft_phase(cfg, input_coeffs=np.zeros((4, 10), dtype=complex))

    def test_wrong_coefficient_shape_rejected(self):
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, data_mode=True)
        with pytest.raises(ValueError, match="input_coeffs shape"):
            run_fft_phase(cfg, input_coeffs=np.zeros((4, 3), dtype=complex))

    def test_wrong_potential_shape_rejected(self):
        cfg = RunConfig(**SMALL, ranks=1, taskgroups=2, data_mode=True)
        with pytest.raises(ValueError, match="potential shape"):
            run_fft_phase(cfg, potential=np.zeros((2, 2, 2)))

    def test_caller_coefficients_flow_through(self):
        desc = FftDescriptor(Cell(alat=SMALL["alat"]), ecutwfc=SMALL["ecutwfc"])
        rng = np.random.default_rng(0)
        coeffs = rng.standard_normal((4, desc.ngw)) + 1j * rng.standard_normal((4, desc.ngw))
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, data_mode=True)
        res = run_fft_phase(cfg, input_coeffs=coeffs)
        np.testing.assert_array_equal(res.input_coeffs, coeffs)
        assert res.validate() < 1e-12


class TestGatherResultsGuards:
    @pytest.fixture(scope="class")
    def layout(self):
        desc = FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)
        return DistributedLayout(desc, 2, 1)

    def test_missing_coefficients_detected(self, layout):
        partial = [
            {0: np.zeros(layout.ngw_of(0), dtype=complex)},
            {},  # rank 1 produced nothing
        ]
        with pytest.raises(ValueError, match="never produced"):
            gather_results(layout, partial, 1)

    def test_wrong_slice_length_detected(self, layout):
        bad = [
            {0: np.zeros(layout.ngw_of(0) + 1, dtype=complex)},
            {0: np.zeros(layout.ngw_of(1), dtype=complex)},
        ]
        with pytest.raises(ValueError, match="coefficients for"):
            gather_results(layout, bad, 1)


class TestWorldGuards:
    def test_placement_too_small_rejected(self):
        from repro.machine import CpuModel, NodeTopology, PhaseTable, PhaseProfile
        from repro.mpisim import MpiWorld, NetworkModel
        from repro.simkit import Simulator

        sim = Simulator()
        topo = NodeTopology(n_cores=4, threads_per_core=1, frequency_hz=1e9)
        cpu = CpuModel(sim, topo, PhaseTable([PhaseProfile("w", 1.0, 0.0)]), 1e9)
        net = NetworkModel(sim, 1e9, 1e9, 0.0)
        small_placement = topo.place(2)
        with pytest.raises(ValueError, match="placement provides"):
            MpiWorld(sim, cpu, net, n_ranks=4, placement=small_placement)
