"""Packed vs pack-free redistribution: identical results, identical cost.

The pack-free path (Alltoallw block descriptors straight between flat
buffers) is a host-side optimization only — by construction its block
volumes equal the old concatenated parts, so the simulated timeline must
not move at all.  These tests pin that contract per executor, plus the
acceptance criterion that the steady-state exchange performs *zero*
staging copies (``dataplane.pack_copies == 0``) while the packed twin
keeps paying them.
"""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)

EXECUTORS = ["original", "pipelined", "ompss_steps", "ompss_perfft", "ompss_combined"]


def run_pair(version):
    out = {}
    for redist in ("packed", "packfree"):
        cfg = RunConfig(
            ranks=2,
            taskgroups=2,
            version=version,
            data_mode=True,
            redistribution=redist,
            **SMALL,
        )
        out[redist] = run_fft_phase(cfg)
    return out


class TestPackedPackfreeIdentity:
    @pytest.fixture(scope="class")
    def pairs(self):
        return {version: run_pair(version) for version in EXECUTORS}

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_outputs_bit_identical(self, pairs, version):
        pair = pairs[version]
        np.testing.assert_array_equal(
            pair["packed"].output_coefficients(),
            pair["packfree"].output_coefficients(),
            err_msg=version,
        )

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_simulated_time_unchanged(self, pairs, version):
        """Cost parity: pack-free must not perturb the network model."""
        pair = pairs[version]
        assert pair["packed"].phase_time == pytest.approx(
            pair["packfree"].phase_time, rel=1e-12
        ), version

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_both_validate_against_dense_reference(self, pairs, version):
        for res in pairs[version].values():
            assert res.validate() < 1e-12

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_packfree_performs_zero_staging_copies(self, pairs, version):
        """The acceptance criterion: steady-state exchange copies nothing."""
        dp = pairs[version]["packfree"].dataplane
        assert dp is not None
        assert dp["pack_copies"] == 0, version

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_packed_twin_still_pays_for_staging(self, pairs, version):
        """Guards the counter itself: if packed ever reads 0 too, the
        ``pack_copies`` accounting has silently broken."""
        dp = pairs[version]["packed"].dataplane
        assert dp is not None
        assert dp["pack_copies"] > 0, version


class TestMetaModeParity:
    @pytest.mark.parametrize(
        "decomposition,redistribution",
        [("slab", "packfree"), ("slab", "packed"), ("pencil", "packfree")],
    )
    def test_meta_mode_reproduces_data_mode_timeline(
        self, decomposition, redistribution
    ):
        """Size-only payloads must drive the cost model identically to real
        arrays — the sweep harness depends on it."""
        times, instrs = [], []
        for data_mode in (True, False):
            cfg = RunConfig(
                ranks=4,
                taskgroups=2,
                version="original",
                data_mode=data_mode,
                decomposition=decomposition,
                redistribution=redistribution,
                **SMALL,
            )
            res = run_fft_phase(cfg)
            times.append(res.phase_time)
            instrs.append(res.cpu.counters.total_instructions())
        assert times[0] == pytest.approx(times[1], rel=1e-14)
        assert instrs[0] == pytest.approx(instrs[1], rel=1e-9)

    def test_redistribution_recorded_in_config(self):
        cfg = RunConfig(ranks=2, taskgroups=2, **SMALL)
        assert cfg.redistribution == "packfree"
        with pytest.raises(ValueError, match="redistribution"):
            RunConfig(ranks=2, taskgroups=2, redistribution="zerocopy", **SMALL)
