"""Multicore kernel execution: determinism, crash surfacing, telemetry.

``kernel_workers=N`` must be a pure speed knob.  For the pocketfft
backends (numpy via the shared-memory process pool, scipy via in-library
threads) sub-batch rows are computed independently, so fanning a batch
over N cores is **byte-identical** to single-threaded execution — pinned
here at the engine level and end-to-end across every executor.  Simulated
timings must not move either: the cost model never sees the knob.

A pool worker dying mid-run (the real-process analogue of the
``repro.faults`` task-kill machinery — same failure class, actual SIGKILL
instead of a simulated kill event) must surface a clean
:class:`~repro.fft.backends.pool.KernelPoolError`, never a hang, and the
process-wide shared pool must replace the broken pool on next use.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase
from repro.fft.backends import KernelEngine, KernelPoolError
from repro.fft.backends.pool import close_shared_pools, shared_pool

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)

ALL_VERSIONS = ["original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"]


@pytest.fixture(autouse=True)
def _fresh_pools():
    # Each test starts and ends without leftover worker processes, so a
    # crash staged in one test can never bleed into another.
    close_shared_pools()
    yield
    close_shared_pools()


def _batch(shape, seed=7):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestEngineDeterminism:
    @pytest.mark.parametrize("kind,shape", [("1z", (13, 30)), ("2xy", (9, 12, 10))])
    def test_pool_fanout_byte_identical_numpy(self, kind, shape):
        x = _batch(shape)
        serial = KernelEngine("numpy", workers=1)
        fanned = KernelEngine("numpy", workers=3)
        run_s = getattr(serial, f"cft_{kind}")
        run_f = getattr(fanned, f"cft_{kind}")
        for sign in (1, -1):
            np.testing.assert_array_equal(run_f(x, sign), run_s(x, sign))
        stats = fanned.stats()
        assert stats["kernel_pool_batches"] == 2
        assert stats["kernel_pool_rows"] == 2 * shape[0]

    def test_inlibrary_workers_byte_identical_scipy(self):
        backend = pytest.importorskip("scipy", reason="scipy backend not installed")
        del backend
        x = _batch((13, 30))
        serial = KernelEngine("scipy", workers=1)
        threaded = KernelEngine("scipy", workers=4)
        for sign in (1, -1):
            np.testing.assert_array_equal(threaded.cft_1z(x, sign), serial.cft_1z(x, sign))
        # In-library threading never touches the process pool.
        assert threaded.stats()["kernel_pool_batches"] == 0

    def test_out_buffer_path_matches_fresh_path_under_pool(self):
        x = _batch((8, 24))
        engine = KernelEngine("numpy", workers=2)
        fresh = engine.cft_1z(x, 1)
        out = np.empty_like(fresh)
        res = engine.cft_1z(x, 1, out=out)
        assert res is out
        np.testing.assert_array_equal(out, fresh)

    def test_single_row_batches_stay_inline(self):
        engine = KernelEngine("numpy", workers=4)
        x = _batch((1, 24))
        engine.cft_1z(x, 1)
        assert engine.stats()["kernel_pool_batches"] == 0


class TestExecutorDeterminism:
    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_workers_byte_identical_across_executors(self, version):
        results = {}
        for workers in (1, 2):
            cfg = RunConfig(
                **SMALL, ranks=2, taskgroups=2, version=version,
                data_mode=True, kernel_workers=workers,
            )
            results[workers] = run_fft_phase(cfg)
        np.testing.assert_array_equal(
            results[2].output_coefficients(), results[1].output_coefficients()
        )
        # The cost model never sees kernel_workers: simulated time is fixed.
        assert results[2].phase_time == results[1].phase_time

    def test_backend_choice_does_not_move_simulated_time(self):
        times = set()
        for backend in ("numpy", "native"):
            cfg = RunConfig(
                **SMALL, ranks=2, taskgroups=2, data_mode=True, fft_backend=backend
            )
            times.add(run_fft_phase(cfg).phase_time)
        assert len(times) == 1


class TestPoolCrash:
    def test_killed_worker_raises_clean_error_not_hang(self):
        engine = KernelEngine("numpy", workers=2)
        x = _batch((8, 24))
        engine.cft_1z(x, 1)  # warm: workers forked, segments mapped
        pool = shared_pool(2)
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        t0 = time.monotonic()
        with pytest.raises(KernelPoolError, match="died|pipe"):
            # One call may land before the kill is delivered; the next
            # must trip the liveness check.  Bounded, never a hang.
            for _ in range(10):
                engine.cft_1z(x, 1)
        assert time.monotonic() - t0 < 30.0
        assert pool.broken

    def test_broken_pool_is_replaced_on_next_use(self):
        engine = KernelEngine("numpy", workers=2)
        x = _batch((8, 24))
        expected = KernelEngine("numpy", workers=1).cft_1z(x, 1)
        engine.cft_1z(x, 1)
        first = shared_pool(2)
        for pid in first.worker_pids():
            os.kill(pid, signal.SIGKILL)
        with pytest.raises(KernelPoolError):
            for _ in range(10):
                engine.cft_1z(x, 1)
        # The shared-pool cache evicts the broken pool; service traffic
        # continues on a fresh one with correct numerics.
        np.testing.assert_array_equal(engine.cft_1z(x, 1), expected)
        second = shared_pool(2)
        assert second is not first and not second.broken

    def test_worker_exception_reports_traceback_without_breaking_pool(self):
        pool = shared_pool(2)
        with pytest.raises(KernelPoolError, match="failed"):
            # Odd-length native rfft raises inside the worker; the error
            # comes back carrying the worker's traceback.
            pool.run("native", "rfft", np.zeros((4, 9)), -1)
        # A bad task is the caller's error: the workers are alive, the
        # reply protocol is drained, and the pool keeps serving.
        assert not pool.broken
        x = _batch((6, 12))
        np.testing.assert_array_equal(
            pool.run("numpy", "c2c_1d", x, 1),
            KernelEngine("numpy", workers=1).cft_1z(x, 1),
        )


class TestKernelTelemetry:
    def test_dataplane_carries_kernel_gauges(self):
        cfg = RunConfig(
            **SMALL, ranks=2, taskgroups=2, data_mode=True,
            kernel_workers=2, telemetry=True,
        )
        result = run_fft_phase(cfg)
        dp = result.dataplane
        assert dp is not None
        assert dp["kernel_backend"] == "numpy"
        assert dp["kernel_workers"] == 2
        assert dp["kernel_calls"] > 0
        assert dp["kernel_rows"] >= dp["kernel_pool_rows"] > 0
        snap = result.telemetry.metrics.snapshot()
        gauges = {
            name: fam["series"][0]["value"]
            for name, fam in snap.items()
            if name.startswith("dataplane.kernel")
        }
        assert gauges["dataplane.kernel_workers"] == 2.0
        assert gauges["dataplane.kernel_pool_batches"] > 0
        # The backend name is a string label, not a gauge.
        assert "dataplane.kernel_backend" not in snap

    def test_manifest_config_records_the_knobs(self):
        from repro.telemetry.manifest import build_manifest

        cfg = RunConfig(
            **SMALL, ranks=2, taskgroups=2, data_mode=True,
            fft_backend="native", telemetry=True,
        )
        manifest = build_manifest(run_fft_phase(cfg))
        assert manifest["config"]["fft_backend"] == "native"
        assert manifest["config"]["kernel_workers"] == 1
        assert manifest["dataplane"]["kernel_backend"] == "native"

    def test_meta_mode_never_builds_an_engine(self):
        # A meta-mode run executes no kernels, so even a config naming an
        # uninstalled optional backend simulates fine.
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, fft_backend="pyfftw")
        result = run_fft_phase(cfg)
        assert result.phase_time > 0
        assert result.dataplane is None
