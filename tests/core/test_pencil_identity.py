"""Pencil decomposition correctness: agreement with the slab path.

The z+y+x 1D FFT chain over the Pr x Pc grid is a complete 3D transform,
so pencil outputs must match the slab executors to floating-point
roundoff — on every executor, on degenerate grids (one rank, prime rank
counts), and across simulated node boundaries (the acceptance criterion:
pencil on >= 2 nodes allclose to single-node slab).
"""

import numpy as np
import pytest

from repro.core import RunConfig, run_fft_phase

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)

EXECUTORS = ["original", "pipelined", "ompss_steps", "ompss_perfft", "ompss_combined"]


@pytest.fixture(scope="module")
def slab_reference():
    cfg = RunConfig(ranks=4, taskgroups=2, version="original", data_mode=True, **SMALL)
    return run_fft_phase(cfg).output_coefficients()


class TestPencilMatchesSlab:
    @pytest.mark.parametrize("version", EXECUTORS)
    def test_every_executor_agrees_with_slab(self, slab_reference, version):
        cfg = RunConfig(
            ranks=4,
            taskgroups=2,
            version=version,
            data_mode=True,
            decomposition="pencil",
            **SMALL,
        )
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12, version
        np.testing.assert_allclose(
            res.output_coefficients(), slab_reference, rtol=1e-12, atol=1e-14
        )

    @pytest.mark.parametrize("version", EXECUTORS)
    def test_pencil_is_pack_free(self, version):
        cfg = RunConfig(
            ranks=4,
            taskgroups=2,
            version=version,
            data_mode=True,
            decomposition="pencil",
            **SMALL,
        )
        dp = run_fft_phase(cfg).dataplane
        assert dp is not None
        assert dp["pack_copies"] == 0, version

    @pytest.mark.parametrize(
        "ranks,taskgroups",
        [
            (1, 2),   # single scatter rank: both transposes degenerate
            (2, 2),   # Pr=1: transpose_yx is a self-exchange
            (3, 2),   # prime R: 1x3 grid
            (6, 1),   # 2x3 grid, one task group
            (2, 4),   # more groups than scatter ranks per group
        ],
    )
    def test_degenerate_grids_validate(self, ranks, taskgroups):
        cfg = RunConfig(
            ranks=ranks,
            taskgroups=taskgroups,
            version="original",
            data_mode=True,
            decomposition="pencil",
            **SMALL,
        )
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12, (ranks, taskgroups)

    def test_grid_factorization_attached_to_layout(self):
        cfg = RunConfig(
            ranks=6,
            taskgroups=1,
            data_mode=True,
            decomposition="pencil",
            **SMALL,
        )
        res = run_fft_phase(cfg)
        grid = res.layout.pencil
        assert (grid.Pr, grid.Pc) == (2, 3)
        assert res.layout.decomposition == "pencil"


class TestPencilAcrossNodes:
    @pytest.mark.parametrize("decomposition", ["slab", "pencil"])
    def test_two_nodes_allclose_to_single_node_slab(
        self, slab_reference, decomposition
    ):
        """The acceptance criterion: a >= 2-node pencil run reproduces the
        single-node slab numerics while actually exercising the fabric."""
        cfg = RunConfig(
            ranks=4,
            taskgroups=2,
            version="original",
            data_mode=True,
            n_nodes=2,
            decomposition=decomposition,
            **SMALL,
        )
        res = run_fft_phase(cfg)
        assert res.validate() < 1e-12
        np.testing.assert_allclose(
            res.output_coefficients(), slab_reference, rtol=1e-12, atol=1e-14
        )
        summary = res.world.network.internode_summary()
        assert summary["inter_bytes"] > 0
