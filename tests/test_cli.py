"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "table1" in out
        assert "ablation-versions" in out

    def test_run_quick_validate(self, capsys):
        code = main(["run", "--ranks", "1", "--taskgroups", "2", "--quick", "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max relative error" in out

    def test_run_task_version(self, capsys):
        code = main(["run", "--ranks", "2", "--taskgroups", "2", "--quick",
                     "--version", "ompss_perfft"])
        assert code == 0
        assert "ompss_perfft" in capsys.readouterr().out

    def test_experiment_dispatch_quick(self, capsys):
        code = main(["fig3", "--quick"])
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"], capture_output=True, text=True
        )
        assert proc.returncode == 0
        assert "fig2" in proc.stdout


class TestCliTelemetry:
    RUN = ["run", "--ranks", "2", "--taskgroups", "2", "--quick"]

    def test_run_exports(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "run.prom"
        code = main(
            self.RUN
            + ["--manifest", str(manifest), "--chrome", str(chrome),
               "--prometheus", str(prom)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "manifest written" in out
        assert manifest.exists() and chrome.exists() and prom.exists()
        doc = json.loads(chrome.read_text())
        assert {"M", "X"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_run_pop_adds_factors(self, tmp_path):
        manifest = tmp_path / "run.json"
        assert main(self.RUN + ["--manifest", str(manifest), "--pop"]) == 0
        doc = json.loads(manifest.read_text())
        assert "pop" in doc
        assert 0 < doc["pop"]["parallel_efficiency"] <= 1.001

    def test_perf_validate_and_diff_and_check(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.RUN + ["--manifest", str(a)]) == 0
        assert main(self.RUN + ["--version", "ompss_perfft", "--manifest", str(b)]) == 0
        capsys.readouterr()

        assert main(["perf", "validate", str(a)]) == 0
        assert "valid run manifest" in capsys.readouterr().out

        assert main(["perf", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "fft_xy" in out

        assert main(["perf", "check", "--baseline", str(a), str(a)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_perf_check_flags_regression(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(self.RUN + ["--manifest", str(a)]) == 0
        doc = json.loads(a.read_text())
        doc["timing"]["phase_time_s"] *= 1.5
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["perf", "check", "--baseline", str(a), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_perf_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "nope"}))
        assert main(["perf", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestCliFaults:
    RUN = ["run", "--ranks", "2", "--taskgroups", "2", "--quick"]

    @staticmethod
    def scenario_file(tmp_path, doc):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_faults_validate_accepts_good_scenario(self, tmp_path, capsys):
        path = self.scenario_file(
            tmp_path,
            {"kind": "repro.fault_scenario",
             "stragglers": [{"rank": 0, "slowdown": 2.0}]},
        )
        assert main(["faults", "validate", path]) == 0
        assert "valid fault scenario" in capsys.readouterr().out

    def test_faults_validate_rejects_bad_scenario(self, tmp_path, capsys):
        path = self.scenario_file(
            tmp_path,
            {"kind": "repro.fault_scenario",
             "stragglers": [{"rank": 0, "slowdown": 0.1}]},
        )
        assert main(["faults", "validate", path]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_faults_validate_missing_file(self, tmp_path, capsys):
        assert main(["faults", "validate", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_run_with_scenario_prints_summary(self, tmp_path, capsys):
        path = self.scenario_file(
            tmp_path,
            {"kind": "repro.fault_scenario", "name": "strag",
             "stragglers": [{"rank": 0, "slowdown": 2.0}]},
        )
        assert main(self.RUN + ["--faults", path]) == 0
        assert "faults: scenario 'strag'" in capsys.readouterr().out

    def test_run_with_malformed_scenario_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(self.RUN + ["--faults", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_run_invalid_config_exits_2(self, capsys):
        assert main(["run", "--ranks", "0"]) == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_unrecoverable_run_exits_1_with_manifest(self, tmp_path, capsys):
        path = self.scenario_file(
            tmp_path,
            {"kind": "repro.fault_scenario", "kill_transfer": 5,
             "max_resumes": 0},
        )
        manifest = tmp_path / "m.json"
        code = main(self.RUN + ["--faults", path, "--manifest", str(manifest)])
        captured = capsys.readouterr()
        assert code == 1
        assert "did not recover" in captured.err
        doc = json.loads(manifest.read_text())
        assert doc["failed"] is True
        assert "MpiLinkError" in doc["fault_report"]["failure"]

    def test_stable_manifests_are_byte_identical(self, tmp_path):
        path = self.scenario_file(
            tmp_path,
            {"kind": "repro.fault_scenario", "seed": 3,
             "stragglers": [{"rank": 1, "slowdown": 2.0}],
             "links": [{"drop_probability": 0.2}], "mpi_max_retries": 10},
        )
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.RUN + ["--faults", path, "--manifest", str(a),
                                "--stable-manifest"]) == 0
        assert main(self.RUN + ["--faults", path, "--manifest", str(b),
                                "--stable-manifest"]) == 0
        assert a.read_bytes() == b.read_bytes()
