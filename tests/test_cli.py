"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "table1" in out
        assert "ablation-versions" in out

    def test_run_quick_validate(self, capsys):
        code = main(["run", "--ranks", "1", "--taskgroups", "2", "--quick", "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max relative error" in out

    def test_run_task_version(self, capsys):
        code = main(["run", "--ranks", "2", "--taskgroups", "2", "--quick",
                     "--version", "ompss_perfft"])
        assert code == 0
        assert "ompss_perfft" in capsys.readouterr().out

    def test_experiment_dispatch_quick(self, capsys):
        code = main(["fig3", "--quick"])
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"], capture_output=True, text=True
        )
        assert proc.returncode == 0
        assert "fig2" in proc.stdout


class TestCliTelemetry:
    RUN = ["run", "--ranks", "2", "--taskgroups", "2", "--quick"]

    def test_run_exports(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "run.prom"
        code = main(
            self.RUN
            + ["--manifest", str(manifest), "--chrome", str(chrome),
               "--prometheus", str(prom)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "manifest written" in out
        assert manifest.exists() and chrome.exists() and prom.exists()
        doc = json.loads(chrome.read_text())
        assert {"M", "X"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_run_pop_adds_factors(self, tmp_path):
        manifest = tmp_path / "run.json"
        assert main(self.RUN + ["--manifest", str(manifest), "--pop"]) == 0
        doc = json.loads(manifest.read_text())
        assert "pop" in doc
        assert 0 < doc["pop"]["parallel_efficiency"] <= 1.001

    def test_perf_validate_and_diff_and_check(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.RUN + ["--manifest", str(a)]) == 0
        assert main(self.RUN + ["--version", "ompss_perfft", "--manifest", str(b)]) == 0
        capsys.readouterr()

        assert main(["perf", "validate", str(a)]) == 0
        assert "valid run manifest" in capsys.readouterr().out

        assert main(["perf", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "fft_xy" in out

        assert main(["perf", "check", "--baseline", str(a), str(a)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_perf_check_flags_regression(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(self.RUN + ["--manifest", str(a)]) == 0
        doc = json.loads(a.read_text())
        doc["timing"]["phase_time_s"] *= 1.5
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["perf", "check", "--baseline", str(a), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_perf_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "nope"}))
        assert main(["perf", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err
