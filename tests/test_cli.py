"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "table1" in out
        assert "ablation-versions" in out

    def test_run_quick_validate(self, capsys):
        code = main(["run", "--ranks", "1", "--taskgroups", "2", "--quick", "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max relative error" in out

    def test_run_task_version(self, capsys):
        code = main(["run", "--ranks", "2", "--taskgroups", "2", "--quick",
                     "--version", "ompss_perfft"])
        assert code == 0
        assert "ompss_perfft" in capsys.readouterr().out

    def test_experiment_dispatch_quick(self, capsys):
        code = main(["fig3", "--quick"])
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
