"""End-to-end fault injection through the driver: slowdowns, retries,
checkpoint resume, unrecoverable failure, and manifest embedding."""

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.faults import FaultScenario, LinkFault, Straggler
from repro.telemetry.manifest import build_manifest, validate_manifest

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


def run(version="original", faults=None, **kwargs):
    cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version, **kwargs)
    return run_fft_phase(cfg, faults=faults)


@pytest.fixture(scope="module")
def baseline_time():
    return run().phase_time


class TestNoFaultExactness:
    def test_empty_scenario_matches_no_scenario_exactly(self, baseline_time):
        res = run(faults=FaultScenario())
        assert res.phase_time == baseline_time
        assert res.fault_report is not None
        assert res.fault_report["injected"] == 0
        assert not res.failed

    def test_scenario_via_config_field(self, baseline_time):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, faults=FaultScenario())
        res = run_fft_phase(cfg)
        assert res.phase_time == baseline_time
        assert res.fault_report is not None


class TestSlowdowns:
    def test_straggler_slows_the_run(self, baseline_time):
        res = run(faults=FaultScenario(stragglers=[Straggler(0, 4.0)]))
        assert res.phase_time > baseline_time
        assert not res.failed

    def test_os_noise_slows_the_run(self, baseline_time):
        res = run(faults=FaultScenario(os_noise=0.5))
        assert res.phase_time > baseline_time

    def test_degraded_link_slows_the_run(self, baseline_time):
        res = run(faults=FaultScenario(links=[LinkFault(bandwidth_factor=0.25)]))
        assert res.phase_time > baseline_time
        assert res.fault_report["counters"]["link_degraded"] == 1


class TestRetries:
    def test_drops_are_retransmitted(self, baseline_time):
        res = run(
            faults=FaultScenario(
                links=[LinkFault(drop_probability=0.3)], mpi_max_retries=10
            )
        )
        assert not res.failed
        counters = res.fault_report["counters"]
        assert counters["drop"] > 0
        assert counters["transfer_recovered"] > 0
        assert res.phase_time > baseline_time  # backoff costs simulated time
        assert res.fault_report["recovered"] is True


class TestCheckpointResume:
    def test_kill_with_resume_budget_recovers(self):
        res = run(faults=FaultScenario(kill_transfer=5, max_resumes=1))
        assert not res.failed
        assert res.n_attempts == 2
        report = res.fault_report
        assert report["counters"]["link_kill"] == 1
        assert report["counters"]["resume"] == 1
        assert len(report["attempts"]) == 2
        assert report["attempts"][0]["error"] is not None
        assert report["attempts"][1]["error"] is None
        assert report["recovered"] is True

    def test_kill_without_budget_fails_structurally(self):
        res = run(faults=FaultScenario(kill_transfer=5, max_resumes=0))
        assert res.failed
        assert res.fault_report["recovered"] is False
        assert "MpiLinkError" in res.fault_report["failure"]

    def test_timeout_fails_structurally(self):
        res = run(
            faults=FaultScenario(
                links=[LinkFault(drop_probability=0.9)],
                mpi_max_retries=50,
                mpi_retry_backoff_s=1.0e-3,
                mpi_timeout_s=2.0e-3,
                max_resumes=0,
            )
        )
        assert res.failed
        assert "MpiTimeoutError" in res.fault_report["failure"]

    def test_resumed_data_run_still_validates(self):
        res = run(faults=FaultScenario(kill_transfer=5, max_resumes=1), data_mode=True)
        assert res.n_attempts == 2
        assert res.validate() < 1e-10


class TestDeterminism:
    def test_identical_faulted_runs_are_identical(self):
        scenario = FaultScenario(
            seed=3,
            stragglers=[Straggler(1, 2.0)],
            links=[LinkFault(drop_probability=0.2)],
            mpi_max_retries=10,
        )
        a = run(faults=scenario)
        b = run(faults=scenario)
        assert a.phase_time == b.phase_time
        assert a.fault_report == b.fault_report


class TestManifestEmbedding:
    def test_faulted_manifest_validates(self):
        res = run(faults=FaultScenario(kill_transfer=5, max_resumes=1), telemetry=True)
        manifest = build_manifest(res, created="(test)")
        assert validate_manifest(manifest) == []
        assert manifest["timing"]["n_attempts"] == 2
        assert manifest["failed"] is False
        assert manifest["fault_report"]["counters"]["resume"] == 1

    def test_unfaulted_manifest_has_no_report(self):
        cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, telemetry=True)
        manifest = build_manifest(run_fft_phase(cfg), created="(test)")
        assert "fault_report" not in manifest
        assert "failed" not in manifest
        assert validate_manifest(manifest) == []
