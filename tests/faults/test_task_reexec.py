"""Transient task failures in the OmpSs executors: re-execution and abort.

Re-execution is exercised through ``ompss_steps`` / ``ompss_combined``, whose
compute-stage tasks are communication-free (idempotent bodies, safe to
replay).  ``ompss_perfft`` whole-band tasks perform MPI and are exempt from
injection (``Task.did_mpi``): replaying a matched collective would deadlock.
"""

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.faults import FaultScenario

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


def run(version, faults, **kwargs):
    cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version, **kwargs)
    return run_fft_phase(cfg, faults=faults)


@pytest.mark.parametrize("version", ["ompss_steps", "ompss_combined"])
class TestReExecution:
    def test_failed_tasks_reexecute_and_validate(self, version):
        scenario = FaultScenario(task_failure_rate=1.0, task_max_failures=3)
        res = run(version, scenario, data_mode=True)
        assert not res.failed
        counters = res.fault_report["counters"]
        assert counters["task_failure"] == 3
        assert counters["task_recovered"] == 3
        assert res.validate() < 1e-10

    def test_reexecution_costs_simulated_time(self, version):
        base = run(version, None).phase_time
        scenario = FaultScenario(task_failure_rate=1.0, task_max_failures=3)
        assert run(version, scenario).phase_time > base


class TestAbort:
    def test_retry_budget_exhaustion_aborts_structurally(self):
        # Every completion fails and only 1 retry is allowed: the second
        # failure of the same task aborts the run with a structured report.
        scenario = FaultScenario(
            task_failure_rate=1.0, task_max_retries=1, max_resumes=0
        )
        res = run("ompss_steps", scenario)
        assert res.failed
        assert "TaskFailedError" in res.fault_report["failure"]
        assert res.fault_report["counters"]["task_abort"] >= 1


class TestMpiTaskExemption:
    def test_perfft_band_tasks_are_never_discarded(self):
        # ompss_perfft tasks all contain collectives, so with did_mpi
        # exemption a 100% failure rate injects nothing and numerics hold.
        scenario = FaultScenario(task_failure_rate=1.0)
        res = run("ompss_perfft", scenario, data_mode=True)
        assert not res.failed
        assert res.fault_report["counters"].get("task_failure", 0) == 0
        assert res.validate() < 1e-10
