"""FaultInjector draw determinism, budgets, and report accounting."""

import pytest

from repro.faults import FaultInjector, FaultReport, FaultScenario, LinkFault, Straggler
from repro.simkit.rng import substream


class TestDeterminism:
    def test_same_seeds_same_draws(self):
        s = FaultScenario(seed=5, os_noise=0.3, links=[LinkFault(drop_probability=0.5)])
        a = FaultInjector(s, config_seed=42)
        b = FaultInjector(s, config_seed=42)
        assert [a.compute_speed_factor((0, 0)) for _ in range(20)] == [
            b.compute_speed_factor((0, 0)) for _ in range(20)
        ]
        assert [a.transfer_outcome(0) for _ in range(20)] == [
            b.transfer_outcome(0) for _ in range(20)
        ]

    def test_config_seed_changes_draws(self):
        s = FaultScenario(seed=5, os_noise=0.3)
        a = FaultInjector(s, config_seed=1)
        b = FaultInjector(s, config_seed=2)
        assert [a.compute_speed_factor((0, 0)) for _ in range(8)] != [
            b.compute_speed_factor((0, 0)) for _ in range(8)
        ]

    def test_concern_streams_are_independent(self):
        # Draining the compute stream must not shift the network stream.
        s = FaultScenario(os_noise=0.3, links=[LinkFault(drop_probability=0.5)])
        a = FaultInjector(s, config_seed=0)
        b = FaultInjector(s, config_seed=0)
        for _ in range(100):
            a.compute_speed_factor((0, 0))
        assert [a.transfer_outcome(0) for _ in range(10)] == [
            b.transfer_outcome(0) for _ in range(10)
        ]

    def test_streams_derive_from_substream(self):
        s = FaultScenario(seed=9, os_noise=0.5)
        inj = FaultInjector(s, config_seed=4)
        expected = substream(4, "faults", 9, "compute")
        assert inj.compute_speed_factor((7, 0)) == 1.0 - 0.5 * expected.random()


class TestComputeFactors:
    def test_straggler_scales_only_its_rank(self):
        s = FaultScenario(stragglers=[Straggler(rank=1, slowdown=4.0)])
        inj = FaultInjector(s, config_seed=0)
        assert inj.compute_speed_factor((0, 0)) == 1.0
        assert inj.compute_speed_factor((1, 0)) == 0.25
        assert inj.compute_speed_factor((1, 3)) == 0.25  # every thread of the rank

    def test_noise_bounded(self):
        s = FaultScenario(os_noise=0.2)
        inj = FaultInjector(s, config_seed=0)
        for _ in range(200):
            f = inj.compute_speed_factor((0, 0))
            assert 0.8 <= f <= 1.0

    def test_no_compute_faults_is_identity(self):
        inj = FaultInjector(FaultScenario(), config_seed=0)
        assert inj.compute_speed_factor((0, 0)) == 1.0


class TestTransferDecisions:
    def test_kill_transfer_fires_exactly_once(self):
        s = FaultScenario(kill_transfer=3)
        inj = FaultInjector(s, config_seed=0)
        outcomes = [inj.transfer_outcome(0) for _ in range(6)]
        assert outcomes == ["ok", "ok", "kill", "ok", "ok", "ok"]
        assert inj.report.counters["link_kill"] == 1

    def test_work_factor_for_degraded_link(self):
        s = FaultScenario(links=[LinkFault(rank=2, bandwidth_factor=0.5)])
        inj = FaultInjector(s, config_seed=0)
        assert inj.transfer_work_factor(2) == 2.0
        assert inj.transfer_work_factor(0) == 1.0

    def test_default_link_applies_everywhere(self):
        s = FaultScenario(links=[LinkFault(rank=None, bandwidth_factor=0.25)])
        inj = FaultInjector(s, config_seed=0)
        assert inj.transfer_work_factor(0) == 4.0
        assert inj.transfer_work_factor(7) == 4.0

    def test_drop_rate_roughly_respected(self):
        s = FaultScenario(links=[LinkFault(drop_probability=0.5)])
        inj = FaultInjector(s, config_seed=0)
        outcomes = [inj.transfer_outcome(0) for _ in range(400)]
        drops = outcomes.count("drop")
        assert 120 < drops < 280


class TestTaskBudget:
    def test_max_failures_caps_injection(self):
        s = FaultScenario(task_failure_rate=1.0, task_max_failures=2)
        inj = FaultInjector(s, config_seed=0)
        fails = [inj.task_should_fail(0, f"t{i}") for i in range(5)]
        assert fails == [True, True, False, False, False]
        assert inj.report.counters["task_failure"] == 2

    def test_zero_rate_never_fails(self):
        inj = FaultInjector(FaultScenario(), config_seed=0)
        assert not any(inj.task_should_fail(0, "t") for _ in range(50))


class TestReport:
    def test_event_cap(self):
        report = FaultReport(FaultScenario())
        for i in range(FaultReport.MAX_EVENTS + 10):
            report.record("drop", float(i), 1)
        assert len(report.events) == FaultReport.MAX_EVENTS
        assert report.truncated_events == 10
        assert report.counters["drop"] == FaultReport.MAX_EVENTS + 10

    def test_injected_and_recovered_sums(self):
        report = FaultReport(FaultScenario())
        report.record("drop", 0.0, 1)
        report.record("link_kill", 0.0, 1)
        report.record("transfer_recovered", 0.0, 1)
        report.record("resume", 0.0, 1)
        report.record("straggler", 0.0, 0)  # configuration, not an injection
        assert report.n_injected == 2
        assert report.n_recovered == 2

    def test_to_dict_is_json_shaped(self):
        import json

        s = FaultScenario(stragglers=[Straggler(0, 2.0)])
        inj = FaultInjector(s, config_seed=0)
        inj.report.attempt_done(1.0, 4, None)
        doc = inj.report.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["scenario"]["stragglers"] == [{"rank": 0, "slowdown": 2.0}]
        assert doc["attempts"][0]["completed_units"] == 4
