"""FaultScenario validation and JSON round-trips."""

import pytest

from repro.faults import (
    SCENARIO_KIND,
    FaultScenario,
    LinkFault,
    ScenarioError,
    Straggler,
    dump_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


class TestValidation:
    def test_defaults_are_valid(self):
        s = FaultScenario()
        assert not s.compute_active
        assert not s.guards_transfers
        assert not s.fails_tasks

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(seed=-1),
            dict(os_noise=1.0),
            dict(os_noise=-0.1),
            dict(task_failure_rate=1.5),
            dict(task_max_failures=-1),
            dict(task_max_retries=-1),
            dict(mpi_max_retries=-1),
            dict(mpi_retry_backoff_s=-1.0),
            dict(mpi_timeout_s=0.0),
            dict(kill_transfer=0),
            dict(max_resumes=-1),
        ],
    )
    def test_bad_scalars_rejected(self, kwargs):
        with pytest.raises(ScenarioError):
            FaultScenario(**kwargs)

    def test_bad_straggler_rejected(self):
        with pytest.raises(ScenarioError, match="rank must be >= 0"):
            Straggler(rank=-1, slowdown=2.0)
        with pytest.raises(ScenarioError, match="slowdown must be >= 1"):
            Straggler(rank=0, slowdown=0.5)

    def test_bad_link_rejected(self):
        with pytest.raises(ScenarioError, match="bandwidth_factor"):
            LinkFault(bandwidth_factor=0.0)
        with pytest.raises(ScenarioError, match="bandwidth_factor"):
            LinkFault(bandwidth_factor=1.5)
        with pytest.raises(ScenarioError, match="drop_probability"):
            LinkFault(drop_probability=1.0)

    def test_duplicate_straggler_ranks_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate straggler"):
            FaultScenario(
                stragglers=[Straggler(0, 2.0), Straggler(0, 3.0)]
            )

    def test_duplicate_link_ranks_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate link"):
            FaultScenario(
                links=[LinkFault(rank=None), LinkFault(rank=None)]
            )

    def test_activity_flags(self):
        assert FaultScenario(stragglers=[Straggler(0, 2.0)]).compute_active
        assert FaultScenario(os_noise=0.1).compute_active
        assert FaultScenario(links=[LinkFault(bandwidth_factor=0.5)]).degrades_links
        assert FaultScenario(links=[LinkFault(drop_probability=0.1)]).guards_transfers
        assert FaultScenario(kill_transfer=3).guards_transfers
        assert FaultScenario(mpi_timeout_s=1.0).guards_transfers
        assert FaultScenario(task_failure_rate=0.5).fails_tasks
        # A zero failure budget disables task injection outright.
        assert not FaultScenario(task_failure_rate=0.5, task_max_failures=0).fails_tasks


class TestRoundTrip:
    def _rich(self):
        return FaultScenario(
            name="rich",
            seed=3,
            stragglers=[Straggler(0, 2.0), Straggler(3, 4.0)],
            os_noise=0.25,
            links=[LinkFault(rank=1, bandwidth_factor=0.5, drop_probability=0.1),
                   LinkFault(rank=None, drop_probability=0.01)],
            task_failure_rate=0.2,
            task_max_failures=5,
            mpi_timeout_s=0.5,
            kill_transfer=7,
            max_resumes=2,
        )

    def test_dict_roundtrip(self):
        s = self._rich()
        doc = scenario_to_dict(s)
        assert doc["kind"] == SCENARIO_KIND
        assert scenario_from_dict(doc) == s

    def test_file_roundtrip(self, tmp_path):
        s = self._rich()
        path = dump_scenario(tmp_path / "s.json", s)
        assert load_scenario(path) == s

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            scenario_from_dict({"kind": SCENARIO_KIND, "slowdwon": 2.0})

    def test_wrong_kind_rejected(self):
        with pytest.raises(ScenarioError, match="kind"):
            scenario_from_dict({"kind": "something.else"})

    def test_bad_entry_keys_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_from_dict(
                {"kind": SCENARIO_KIND, "stragglers": [{"rnk": 0, "slowdown": 2.0}]}
            )
        with pytest.raises(ScenarioError, match="straggler entry"):
            scenario_from_dict({"kind": SCENARIO_KIND, "stragglers": [3]})

    def test_non_object_rejected(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            scenario_from_dict([1, 2, 3])

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario(bad)
