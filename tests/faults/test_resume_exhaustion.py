"""Checkpoint/resume exhaustion: the resume budget runs out mid-phase.

A lossy link (90% drop, one MPI retry) makes every attempt die with a
transfer failure, so with ``max_resumes=2`` the driver burns the full
budget — three attempts, two resumes — and must fail *structurally*:
``RunResult.failed`` set, the attempt ledger complete, and the partial
manifest still schema-valid.  Pinned across all five executors, since
each wires fault injection into a different pipeline shape.
"""

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.faults import FaultScenario, LinkFault
from repro.telemetry.manifest import build_manifest, validate_manifest

EXECUTORS = ("original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined")

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)

#: Every attempt fails fast (drops swamp the single retry), so the run
#: exhausts max_resumes deterministically instead of limping through.
EXHAUSTING = dict(
    links=[LinkFault(drop_probability=0.9)],
    mpi_max_retries=1,
    max_resumes=2,
)


def run(version, **kwargs):
    cfg = RunConfig(**SMALL, ranks=2, taskgroups=2, version=version, **kwargs)
    return run_fft_phase(cfg, faults=FaultScenario(**EXHAUSTING))


@pytest.mark.parametrize("version", EXECUTORS)
class TestResumeExhaustion:
    def test_budget_exhaustion_fails_structurally(self, version):
        res = run(version)
        assert res.failed
        assert res.fault_report["recovered"] is False
        assert "MpiLinkError" in res.fault_report["failure"]

    def test_attempt_ledger_is_complete(self, version):
        res = run(version)
        # max_resumes=2 means 1 fresh attempt + 2 resumes, all failed.
        assert res.n_attempts == 3
        report = res.fault_report
        assert report["counters"]["resume"] == 2
        attempts = report["attempts"]
        assert len(attempts) == 3
        assert all(a["error"] is not None for a in attempts)

    def test_partial_manifest_still_validates(self, version):
        res = run(version, telemetry=True)
        manifest = build_manifest(res, created="(test)")
        assert validate_manifest(manifest) == []
        assert manifest["failed"] is True
        assert manifest["timing"]["n_attempts"] == 3
        assert manifest["fault_report"]["recovered"] is False


def test_exhaustion_is_deterministic():
    a = run("original")
    b = run("original")
    assert a.fault_report == b.fault_report
