"""Tests for the mini plane-wave band solver built on the FFT kernel."""

import numpy as np
import pytest

from repro.core import RunConfig
from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import Hamiltonian, dense_hamiltonian_matrix, kinetic_spectrum, solve_bands


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)


@pytest.fixture(scope="module")
def potential(desc):
    return make_potential(desc.grid_shape, seed=4)


@pytest.fixture(scope="module")
def ham(desc, potential):
    return Hamiltonian(desc, potential)


@pytest.fixture(scope="module")
def h_matrix(desc, potential):
    return dense_hamiltonian_matrix(desc, potential)


class TestHamiltonian:
    def test_kinetic_spectrum_units(self, desc):
        """|G|^2 in Ry: the G=0 entry is 0, ordering follows the sphere."""
        kin = kinetic_spectrum(desc)
        assert kin[0] == 0.0
        np.testing.assert_allclose(kin, desc.sphere.g2 * desc.cell.tpiba2)

    def test_apply_matches_dense_matrix(self, ham, h_matrix, desc):
        rng = np.random.default_rng(1)
        c = rng.standard_normal((3, desc.ngw)) + 1j * rng.standard_normal((3, desc.ngw))
        np.testing.assert_allclose(ham.apply(c), c @ h_matrix.T, atol=1e-10)

    def test_matrix_is_hermitian(self, h_matrix):
        np.testing.assert_allclose(h_matrix, h_matrix.conj().T, atol=1e-12)

    def test_distributed_engine_matches_dense_engine(self, ham, desc):
        rng = np.random.default_rng(2)
        c = rng.standard_normal((2, desc.ngw)) + 1j * rng.standard_normal((2, desc.ngw))
        engine = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=4, ranks=2, taskgroups=2,
            version="original", data_mode=True,
        )
        dense = ham.apply(c, engine="dense")
        distributed = ham.apply(c, engine=engine)
        np.testing.assert_allclose(distributed, dense, atol=1e-10)
        assert ham.simulated_time > 0.0

    def test_shape_validation(self, ham, desc, potential):
        with pytest.raises(ValueError, match="columns"):
            ham.apply(np.zeros((2, 3), dtype=complex))
        with pytest.raises(ValueError, match="potential shape"):
            Hamiltonian(ham.desc, potential[:2])
        with pytest.raises(ValueError, match="engine"):
            ham.apply(np.zeros((1, desc.ngw), dtype=complex), engine="gpu")

    def test_expectation_bounds(self, ham, desc):
        """Rayleigh quotients lie within the spectrum's range."""
        rng = np.random.default_rng(3)
        c = rng.standard_normal((4, desc.ngw)) + 1j * rng.standard_normal((4, desc.ngw))
        e = ham.expectation(c)
        kin_max = kinetic_spectrum(desc).max()
        vmax = ham.potential.max()
        assert np.all(e > 0)
        assert np.all(e < kin_max + vmax)


class TestBandSolver:
    def test_matches_exact_diagonalization(self, ham, h_matrix):
        exact = np.linalg.eigvalsh(h_matrix)[:4]
        res = solve_bands(ham, 4, tol=1e-11, max_iterations=100)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, exact, atol=1e-8)

    def test_eigenvectors_are_orthonormal_eigenpairs(self, ham, h_matrix):
        res = solve_bands(ham, 3, tol=1e-11, max_iterations=100)
        x = res.eigenvectors
        np.testing.assert_allclose(x @ x.conj().T, np.eye(3), atol=1e-8)
        hx = x @ h_matrix.T
        np.testing.assert_allclose(
            hx, res.eigenvalues[:, None] * x, atol=1e-6
        )

    def test_history_monotone_decreasing(self, ham):
        res = solve_bands(ham, 4, tol=1e-11, max_iterations=100)
        sums = res.history
        assert all(a >= b - 1e-10 for a, b in zip(sums, sums[1:]))

    def test_lowest_eigenvalue_above_potential_floor(self, ham):
        """V >= 1 everywhere -> every eigenvalue > 1 Ry (kinetic >= 0)."""
        res = solve_bands(ham, 2, tol=1e-10)
        assert res.eigenvalues.min() > 1.0

    def test_distributed_engine_gives_same_bands(self, ham, desc, h_matrix):
        exact = np.linalg.eigvalsh(h_matrix)[:2]
        engine = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=1,
            version="ompss_perfft", data_mode=True,
        )
        fresh = Hamiltonian(desc, ham.potential)
        res = solve_bands(fresh, 2, engine=engine, tol=1e-10, max_iterations=40, n_extra=4)
        np.testing.assert_allclose(res.eigenvalues, exact, atol=1e-7)
        assert res.simulated_time > 0.0

    def test_validation(self, ham, desc):
        with pytest.raises(ValueError, match="n_bands"):
            solve_bands(ham, 0)
        with pytest.raises(ValueError, match="basis"):
            solve_bands(ham, desc.ngw + 1)

    def test_free_particle_limit(self):
        """With a constant potential the eigenvalues are |G|^2 + V0 exactly."""
        desc = FftDescriptor(Cell(alat=5.0), ecutwfc=10.0)
        v = np.full((desc.nr3, desc.nr1, desc.nr2), 2.5)
        ham = Hamiltonian(desc, v)
        res = solve_bands(ham, 5, tol=1e-12, max_iterations=60)
        expected = np.sort(kinetic_spectrum(desc))[:5] + 2.5
        np.testing.assert_allclose(res.eigenvalues, expected, atol=1e-8)
