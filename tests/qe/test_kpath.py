"""Tests for k-point Hamiltonians and the band-path workflow."""

import numpy as np
import pytest

from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import (
    CUBIC_POINTS,
    Hamiltonian,
    band_structure,
    dense_hamiltonian_matrix,
    k_path,
    kinetic_spectrum,
    solve_bands,
)


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=10.0)


@pytest.fixture(scope="module")
def potential(desc):
    return make_potential(desc.grid_shape, seed=4)


class TestKineticAtK:
    def test_gamma_matches_default(self, desc):
        np.testing.assert_allclose(
            kinetic_spectrum(desc, np.zeros(3)), kinetic_spectrum(desc)
        )

    def test_k_shift_formula(self, desc):
        k = np.array([0.5, 0.0, 0.0])
        kin = kinetic_spectrum(desc, k)
        g = desc.sphere.millers @ desc.cell.bg.T
        expected = np.sum((g + k) ** 2, axis=1) * desc.cell.tpiba2
        np.testing.assert_allclose(kin, expected)

    def test_bad_k_shape(self, desc):
        with pytest.raises(ValueError, match="3-vector"):
            kinetic_spectrum(desc, np.zeros(2))


class TestKPath:
    def test_named_points(self):
        path = k_path(["G", "X"], n_per_segment=5)
        assert path.shape == (5, 3)
        np.testing.assert_allclose(path[0], CUBIC_POINTS["G"])
        np.testing.assert_allclose(path[-1], CUBIC_POINTS["X"])

    def test_corners_not_duplicated(self):
        path = k_path(["G", "X", "M"], n_per_segment=4)
        assert path.shape == (7, 3)  # 4 + 3 (shared X counted once)

    def test_explicit_vectors(self):
        path = k_path([(0, 0, 0), (0.25, 0, 0)], n_per_segment=3)
        np.testing.assert_allclose(path[1], [0.125, 0, 0])

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown k-point"):
            k_path(["G", "Z"])
        with pytest.raises(ValueError, match="at least two"):
            k_path(["G"])
        with pytest.raises(ValueError, match="n_per_segment"):
            k_path(["G", "X"], n_per_segment=1)
        with pytest.raises(ValueError, match="3-vectors"):
            k_path([(0, 0), (1, 1)])


class TestBandsAtK:
    def test_solver_matches_dense_at_x(self, desc, potential):
        k = np.asarray(CUBIC_POINTS["X"], dtype=float)
        exact = np.linalg.eigvalsh(dense_hamiltonian_matrix(desc, potential, k=k))[:3]
        ham = Hamiltonian(desc, potential, k=k)
        res = solve_bands(ham, 3, tol=1e-11, max_iterations=120)
        np.testing.assert_allclose(res.eigenvalues, exact, atol=1e-7)

    def test_free_particle_dispersion(self, desc):
        """Constant V: the lowest band at k is min_G |k+G|^2 + V0 exactly."""
        v0 = 2.0
        v = np.full((desc.nr3, desc.nr1, desc.nr2), v0)
        for k in (np.zeros(3), np.array([0.25, 0.0, 0.0])):
            ham = Hamiltonian(desc, v, k=k)
            res = solve_bands(ham, 1, tol=1e-12, max_iterations=80)
            expected = kinetic_spectrum(desc, k).min() + v0
            assert res.eigenvalues[0] == pytest.approx(expected, abs=1e-8)

    def test_band_structure_shape_and_continuity(self, desc, potential):
        path = k_path(["G", "X"], n_per_segment=4)
        bs = band_structure(desc, potential, path, n_bands=2, tol=1e-9)
        assert bs.energies.shape == (4, 2)
        assert bs.distances[0] == 0.0
        assert np.all(np.diff(bs.distances) > 0)
        # Bands vary smoothly: adjacent samples within a modest step.
        steps = np.abs(np.diff(bs.energies, axis=0))
        assert steps.max() < 2.0

    def test_band_width_positive(self, desc, potential):
        path = k_path(["G", "X"], n_per_segment=3)
        bs = band_structure(desc, potential, path, n_bands=2, tol=1e-9)
        assert np.all(bs.band_width >= 0)
        assert bs.band_width.max() > 0.01  # a free-ish band disperses
