"""Tests for the density-of-states post-processing."""

import numpy as np
import pytest

from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe.dos import density_of_states, monkhorst_pack


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=10.0)


@pytest.fixture(scope="module")
def potential(desc):
    return make_potential(desc.grid_shape, seed=4)


class TestMonkhorstPack:
    def test_grid_shape_and_range(self):
        grid = monkhorst_pack(2, 2, 2)
        assert grid.shape == (8, 3)
        assert grid.min() >= 0.0 and grid.max() < 1.0
        # Gamma included.
        assert (grid == 0).all(axis=1).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            monkhorst_pack(0, 1, 1)


class TestDensityOfStates:
    @pytest.fixture(scope="class")
    def dos(self, desc, potential):
        kgrid = monkhorst_pack(2, 2, 1)
        return density_of_states(desc, potential, kgrid, n_bands=3, sigma=0.15)

    def test_integrates_to_band_count(self, dos):
        """With the window covering all samples, the integral counts the
        bands (states per k-point)."""
        assert dos.integrated() == pytest.approx(3.0, rel=0.02)

    def test_nonnegative_and_peaked_near_eigenvalues(self, dos):
        assert dos.dos.min() >= 0.0
        peak_e = dos.energies[np.argmax(dos.dos)]
        assert dos.eigenvalues.min() - 0.3 <= peak_e <= dos.eigenvalues.max() + 0.3

    def test_eigenvalue_samples_shape(self, dos):
        assert dos.eigenvalues.shape == (4, 3)

    def test_sigma_validation(self, desc, potential):
        with pytest.raises(ValueError, match="sigma"):
            density_of_states(desc, potential, np.zeros((1, 3)), 1, sigma=0.0)

    def test_wider_sigma_smooths(self, desc, potential):
        kgrid = monkhorst_pack(1, 1, 1)
        sharp = density_of_states(desc, potential, kgrid, 2, sigma=0.05)
        smooth = density_of_states(desc, potential, kgrid, 2, sigma=0.4)
        assert sharp.dos.max() > smooth.dos.max()
