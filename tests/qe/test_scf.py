"""Tests for the self-consistent field loop (smearing, mixing, fixed point)."""

import numpy as np
import pytest

from repro.core import RunConfig
from repro.core.wave import make_potential
from repro.grids import Cell, FftDescriptor
from repro.qe import (
    Hamiltonian,
    density_from_bands,
    fermi_occupations,
    run_scf,
    solve_bands,
)


@pytest.fixture(scope="module")
def desc():
    return FftDescriptor(Cell(alat=5.0), ecutwfc=12.0)


@pytest.fixture(scope="module")
def v_ext(desc):
    return make_potential(desc.grid_shape, seed=4)


class TestFermiOccupations:
    def test_sum_equals_electron_count(self):
        eps = np.array([1.0, 2.0, 2.001, 2.002, 5.0])
        for ne in (1, 2, 3.5):
            f = fermi_occupations(eps, ne, sigma=0.05)
            assert f.sum() == pytest.approx(ne, abs=1e-9)
            assert np.all((0 <= f) & (f <= 1))

    def test_degenerate_states_share_occupation(self):
        eps = np.array([1.0, 2.0, 2.0, 3.0])
        f = fermi_occupations(eps, 2, sigma=0.05)
        assert f[1] == pytest.approx(f[2], abs=1e-12)

    def test_cold_limit_is_step_function(self):
        eps = np.array([1.0, 2.0, 3.0, 4.0])
        f = fermi_occupations(eps, 2, sigma=1e-4)
        np.testing.assert_allclose(f, [1, 1, 0, 0], atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            fermi_occupations(np.array([1.0]), 1, sigma=0.0)
        with pytest.raises(ValueError, match="n_electrons"):
            fermi_occupations(np.array([1.0]), 2, sigma=0.1)


class TestDensity:
    def test_integrates_to_electron_count(self, desc, v_ext):
        ham = Hamiltonian(desc, v_ext)
        res = solve_bands(ham, 2, tol=1e-10)
        rho = density_from_bands(desc, res.eigenvectors)
        assert rho.mean() * desc.cell.volume == pytest.approx(2.0, rel=1e-9)

    def test_nonnegative(self, desc, v_ext):
        ham = Hamiltonian(desc, v_ext)
        res = solve_bands(ham, 3, tol=1e-10)
        rho = density_from_bands(desc, res.eigenvectors)
        assert rho.min() >= -1e-14

    def test_occupation_weights(self, desc, v_ext):
        ham = Hamiltonian(desc, v_ext)
        res = solve_bands(ham, 2, tol=1e-10)
        rho = density_from_bands(desc, res.eigenvectors, np.array([0.5, 0.25]))
        assert rho.mean() * desc.cell.volume == pytest.approx(0.75, rel=1e-9)


class TestScf:
    def test_converges_through_degenerate_shell(self, desc, v_ext):
        """The near-degenerate trio of this spectrum breaks integer-occupation
        SCF; smearing must carry it to a fixed point."""
        res = run_scf(desc, v_ext, n_electrons=2, coupling=2.0, tol=1e-8, max_iterations=80)
        assert res.converged
        assert res.residual_history[-1] < 1e-8

    def test_fixed_point_is_self_consistent(self, desc, v_ext):
        """Re-solving at the converged potential reproduces the density."""
        res = run_scf(desc, v_ext, n_electrons=1, coupling=2.0, tol=1e-10, max_iterations=80)
        assert res.converged
        ham = Hamiltonian(desc, res.potential)
        bands = solve_bands(ham, len(res.occupations), tol=1e-11)
        occ = fermi_occupations(bands.eigenvalues, 1, sigma=0.05)
        rho = density_from_bands(desc, bands.eigenvectors, occ)
        np.testing.assert_allclose(rho, res.density, atol=1e-7)

    def test_zero_coupling_matches_plain_band_solve(self, desc, v_ext):
        # With no feedback the density is right after one solve; full mixing
        # makes the residual hit zero on the second iteration.
        res = run_scf(desc, v_ext, n_electrons=1, coupling=0.0, tol=1e-9,
                      max_iterations=5, mixing=1.0)
        assert res.converged
        ham = Hamiltonian(desc, v_ext)
        bands = solve_bands(ham, 1, tol=1e-11)
        assert res.bands.eigenvalues[0] == pytest.approx(bands.eigenvalues[0], abs=1e-7)

    def test_interaction_raises_energy(self, desc, v_ext):
        """A repulsive coupling must raise the ground-state energy."""
        free = run_scf(desc, v_ext, n_electrons=1, coupling=0.0, tol=1e-9)
        coupled = run_scf(desc, v_ext, n_electrons=1, coupling=3.0, tol=1e-8, max_iterations=80)
        assert coupled.total_energy > free.total_energy

    def test_charge_conserved(self, desc, v_ext):
        res = run_scf(desc, v_ext, n_electrons=2, coupling=1.0, tol=1e-8, max_iterations=80)
        assert res.density.mean() * desc.cell.volume == pytest.approx(2.0, rel=1e-6)

    def test_validation(self, desc, v_ext):
        with pytest.raises(ValueError, match="mixing"):
            run_scf(desc, v_ext, 1, mixing=0.0)
        with pytest.raises(ValueError, match="coupling"):
            run_scf(desc, v_ext, 1, coupling=-1.0)
        with pytest.raises(ValueError, match="n_electrons"):
            run_scf(desc, v_ext, 0)
        with pytest.raises(ValueError, match="v_ext"):
            run_scf(desc, v_ext[:2], 1)

    def test_distributed_engine_scf(self, desc, v_ext):
        """A short SCF whose H applications run on the simulated machine."""
        engine = RunConfig(
            ecutwfc=12.0, alat=5.0, nbnd=8, ranks=2, taskgroups=1,
            version="ompss_perfft", data_mode=True,
        )
        res = run_scf(
            desc, v_ext, n_electrons=1, coupling=1.0, tol=1e-5,
            max_iterations=8, engine=engine, band_tol=1e-8,
        )
        assert res.simulated_time > 0
        reference = run_scf(
            desc, v_ext, n_electrons=1, coupling=1.0, tol=1e-5,
            max_iterations=8, band_tol=1e-8,
        )
        assert res.total_energy == pytest.approx(reference.total_energy, abs=1e-6)
