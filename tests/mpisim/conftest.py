"""Shared fixtures for mpisim tests: a small 8-rank world on a toy node."""

import pytest

from repro.machine import CpuModel, NodeTopology, PhaseProfile, PhaseTable
from repro.mpisim import MpiWorld, NetworkModel
from repro.simkit import Simulator

FREQ = 1.0e9


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def cpu(sim):
    topo = NodeTopology(n_cores=16, threads_per_core=4, frequency_hz=FREQ)
    table = PhaseTable([PhaseProfile("work", ipc0=1.0, bytes_per_instr=0.0)])
    return CpuModel(sim, topo, table, bandwidth_bytes_per_s=1.0e12)


@pytest.fixture()
def network(sim):
    # Round numbers make hand-computed timings easy: 1 GB/s injection,
    # 8 GB/s aggregate, 1 us latency.
    return NetworkModel(sim, capacity=8.0e9, injection_bw=1.0e9, latency=1.0e-6)


@pytest.fixture()
def world(sim, cpu, network):
    return MpiWorld(sim, cpu, network, n_ranks=8)


def make_world(sim, cpu, network, n_ranks, threads_per_rank=1):
    return MpiWorld(sim, cpu, network, n_ranks=n_ranks, threads_per_rank=threads_per_rank)
