"""Tests for communicator duplication."""

import numpy as np


class TestDup:
    def test_dup_has_same_group_new_identity(self, world):
        seen = {}

        def program(rank):
            fresh = yield rank.dup(world.comm_world)
            seen[rank.rank] = fresh

        world.launch(program)
        world.run()
        fresh = seen[0]
        assert fresh.ranks == world.comm_world.ranks
        assert fresh.id != world.comm_world.id
        assert all(c is fresh for c in seen.values())

    def test_dup_gives_independent_matching_context(self, world):
        """A collective on the dup never matches one on the parent."""
        results = {}

        def program(rank):
            fresh = yield rank.dup(world.comm_world)
            # Same op type, issued on different communicators by different
            # halves in different orders — keys are per communicator, so
            # everything pairs up correctly.
            if rank.rank % 2 == 0:
                a = rank.allreduce(world.comm_world, np.array([1.0]), key="k")
                b = rank.allreduce(fresh, np.array([10.0]), key="k")
            else:
                b = rank.allreduce(fresh, np.array([10.0]), key="k")
                a = rank.allreduce(world.comm_world, np.array([1.0]), key="k")
            got_a = yield a
            got_b = yield b
            results[rank.rank] = (float(got_a[0]), float(got_b[0]))

        world.launch(program)
        world.run()
        assert results[0] == (8.0, 80.0)

    def test_dup_registered_with_world(self, world):
        def program(rank):
            yield rank.dup(world.comm_world)

        world.launch(program)
        world.run()
        names = [c.name for c in world.communicators.values()]
        assert any(name.endswith("+dup") for name in names)
