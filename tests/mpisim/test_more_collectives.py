"""Tests for allgather, rooted reduce, and root-scatter."""

import numpy as np
import pytest

from repro.mpisim import MetaPayload, MpiSimError


class TestAllgather:
    def test_everyone_gets_everything_in_order(self, world):
        results = {}

        def program(rank):
            got = yield rank.allgather(world.comm_world, np.array([float(rank.rank)]))
            results[rank.rank] = got

        world.launch(program)
        world.run()
        for r in range(8):
            np.testing.assert_allclose(np.concatenate(results[r]), np.arange(8.0))

    def test_received_are_copies(self, world):
        results = {}
        mine = {}

        def program(rank):
            payload = np.array([float(rank.rank)])
            mine[rank.rank] = payload
            got = yield rank.allgather(world.comm_world, payload)
            results[rank.rank] = got
            payload[0] = -99.0

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[0][3], [3.0])

    def test_meta_mode(self, world):
        results = {}

        def program(rank):
            got = yield rank.allgather(world.comm_world, MetaPayload(256.0))
            results[rank.rank] = got

        world.launch(program)
        world.run()
        assert all(isinstance(p, MetaPayload) for p in results[2])

    def test_ring_cost_accounting(self, world):
        records = []
        world.add_mpi_observer(records.append)

        def program(rank):
            yield rank.allgather(world.comm_world, MetaPayload(100.0))

        world.launch(program)
        world.run()
        ag = [r for r in records if r.call == "allgather"]
        assert len(ag) == 8
        assert all(r.bytes_sent == pytest.approx(700.0) for r in ag)


class TestReduce:
    def test_only_root_receives(self, world):
        results = {}

        def program(rank):
            got = yield rank.reduce(world.comm_world, root=2, array=np.full(3, 1.0))
            results[rank.rank] = got

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[2], np.full(3, 8.0))
        assert all(results[r] is None for r in range(8) if r != 2)

    @pytest.mark.parametrize("op,expected", [("max", 7.0), ("min", 0.0)])
    def test_min_max(self, world, op, expected):
        results = {}

        def program(rank):
            got = yield rank.reduce(
                world.comm_world, root=0, array=np.array([float(rank.rank)]), op=op
            )
            results[rank.rank] = got

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[0], [expected])

    def test_root_mismatch(self, world):
        def program(rank):
            yield rank.reduce(world.comm_world, root=rank.rank % 2, array=np.zeros(1))

        world.launch(program)
        with pytest.raises(MpiSimError, match="root mismatch"):
            world.run()

    def test_bad_op(self, world):
        def program(rank):
            yield rank.reduce(world.comm_world, root=0, array=np.zeros(1), op="xor")

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="unsupported"):
            world.run()


class TestRootScatter:
    def test_parts_distributed(self, world):
        results = {}

        def program(rank):
            parts = None
            if rank.rank == 0:
                parts = [np.full(2, float(j)) for j in range(8)]
            got = yield rank.scatter_from_root(world.comm_world, root=0, parts=parts)
            results[rank.rank] = got

        world.launch(program)
        world.run()
        for r in range(8):
            np.testing.assert_allclose(results[r], float(r))

    def test_missing_parts_at_root_rejected(self, world):
        def program(rank):
            yield rank.scatter_from_root(world.comm_world, root=0, parts=None)

        world.launch(program)
        with pytest.raises(MpiSimError, match="needs 8 parts"):
            world.run()

    def test_only_root_pays_injection(self, world):
        records = []
        world.add_mpi_observer(records.append)

        def program(rank):
            parts = [MetaPayload(64.0)] * 8 if rank.rank == 3 else None
            yield rank.scatter_from_root(world.comm_world, root=3, parts=parts)

        world.launch(program)
        world.run()
        by_stream = {r.stream: r for r in records if r.call == "rscatter"}
        assert by_stream[(3, 0)].bytes_sent == pytest.approx(7 * 64.0)
        assert by_stream[(0, 0)].bytes_sent == 0.0
