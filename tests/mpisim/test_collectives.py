"""Semantics tests for simulated MPI collectives (data movement + matching)."""

import numpy as np
import pytest

from repro.mpisim import MetaPayload, MpiSimError
from repro.simkit import DeadlockError


class TestAlltoall:
    def test_personalized_exchange_with_arrays(self, world):
        """recv[j] on rank i must be what rank j addressed to i."""
        results = {}

        def program(rank):
            parts = [
                np.full(4, 100 * rank.rank + j, dtype=np.float64)
                for j in range(world.comm_world.size)
            ]
            recv = yield rank.alltoall(world.comm_world, parts)
            results[rank.rank] = recv

        world.launch(program)
        world.run()
        for i in range(8):
            for j in range(8):
                np.testing.assert_allclose(results[i][j], 100 * j + i)

    def test_received_arrays_are_copies(self, world):
        """Mutating a sender's buffer after the exchange must not corrupt receivers."""
        results = {}
        buffers = {}

        def program(rank):
            parts = [np.full(2, float(rank.rank)) for _ in range(world.comm_world.size)]
            buffers[rank.rank] = parts
            recv = yield rank.alltoall(world.comm_world, parts)
            results[rank.rank] = recv
            for p in parts:
                p[:] = -1.0

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[0][3], 3.0)

    def test_ragged_parts_alltoallv(self, world):
        """Varying part sizes (the Alltoallv of pack/unpack) are preserved."""
        results = {}

        def program(rank):
            parts = [
                np.arange(rank.rank + j, dtype=np.float64)
                for j in range(world.comm_world.size)
            ]
            recv = yield rank.alltoall(world.comm_world, parts)
            results[rank.rank] = [len(r) for r in recv]

        world.launch(program)
        world.run()
        assert results[2] == [j + 2 for j in range(8)]

    def test_meta_payloads_move_no_data(self, world):
        results = {}

        def program(rank):
            parts = [MetaPayload(1024.0) for _ in range(world.comm_world.size)]
            recv = yield rank.alltoall(world.comm_world, parts)
            results[rank.rank] = recv

        world.launch(program)
        world.run()
        assert all(isinstance(p, MetaPayload) for p in results[0])

    def test_wrong_part_count_raises(self, world):
        def program(rank):
            yield rank.alltoall(world.comm_world, [MetaPayload(1.0)] * 3)

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="needs 8 parts"):
            world.run()

    def test_takes_time_proportional_to_bytes(self, world):
        """8 ranks x 7 MB off-diagonal at 8 GB/s aggregate: ~7 ms + latency."""
        times = {}

        def program(rank):
            parts = [MetaPayload(1.0e6) for _ in range(world.comm_world.size)]
            yield rank.alltoall(world.comm_world, parts)
            times[rank.rank] = rank.sim.now

        world.launch(program)
        world.run()
        # total off-diagonal bytes = 8 ranks * 7e6 B = 5.6e7 B at 8e9 B/s
        # = 7.0 ms, + 7 messages * 1 us latency.
        assert times[0] == pytest.approx(5.6e7 / 8.0e9 + 7e-6, rel=1e-6)

    def test_missing_participant_deadlocks(self, world):
        def program(rank):
            parts = [MetaPayload(1.0)] * world.comm_world.size
            yield rank.alltoall(world.comm_world, parts)

        world.launch(program, ranks=range(7))  # rank 7 never joins
        with pytest.raises(DeadlockError):
            world.run()


class TestMatching:
    def test_collective_type_mismatch_detected(self, world):
        def a2a(rank):
            yield rank.alltoall(world.comm_world, [MetaPayload(1.0)] * 8)

        def bar(rank):
            yield rank.barrier(world.comm_world)

        world.launch(a2a, ranks=[0])
        world.launch(bar, ranks=range(1, 8))
        with pytest.raises(MpiSimError, match="mismatch"):
            world.run()

    def test_explicit_keys_match_out_of_order(self, world):
        """Concurrent keyed collectives pair by key, not call order."""
        results = {}

        def program(rank):
            # Each rank issues two barriers in rank-dependent order.
            keys = ["x", "y"] if rank.rank % 2 == 0 else ["y", "x"]
            ev1 = rank.barrier(world.comm_world, key=keys[0])
            ev2 = rank.barrier(world.comm_world, key=keys[1])
            yield rank.sim.all_of([ev1, ev2])
            results[rank.rank] = True

        world.launch(program)
        world.run()
        assert len(results) == 8

    def test_double_join_same_key_raises(self, world):
        def program(rank):
            rank.barrier(world.comm_world, key="k")
            yield rank.barrier(world.comm_world, key="k")

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="twice"):
            world.run()


class TestBarrier:
    def test_barrier_synchronizes(self, world):
        times = {}

        def program(rank):
            yield rank.sim.timeout(rank.rank * 1.0e-3)
            yield rank.barrier(world.comm_world)
            times[rank.rank] = rank.sim.now

        world.launch(program)
        world.run()
        latest = max(times.values())
        assert all(t == pytest.approx(latest) for t in times.values())
        assert latest >= 7.0e-3  # slowest arrival dominates


class TestBcast:
    def test_bcast_delivers_root_payload(self, world):
        results = {}

        def program(rank):
            payload = np.arange(5, dtype=np.float64) if rank.rank == 3 else None
            got = yield rank.bcast(world.comm_world, root=3, payload=payload)
            results[rank.rank] = got

        world.launch(program)
        world.run()
        for r in range(8):
            np.testing.assert_allclose(results[r], np.arange(5))

    def test_bcast_root_mismatch_raises(self, world):
        def program(rank):
            root = 0 if rank.rank < 4 else 1
            yield rank.bcast(world.comm_world, root=root, payload=MetaPayload(8.0))

        world.launch(program)
        with pytest.raises(MpiSimError, match="root mismatch"):
            world.run()

    def test_bad_root_rejected(self, world):
        def program(rank):
            yield rank.bcast(world.comm_world, root=99, payload=None)

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="out of range"):
            world.run()


class TestAllreduce:
    def test_sum_reduction(self, world):
        results = {}

        def program(rank):
            arr = np.full(3, float(rank.rank))
            got = yield rank.allreduce(world.comm_world, arr, op="sum")
            results[rank.rank] = got

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[5], np.full(3, sum(range(8))))

    def test_max_reduction(self, world):
        results = {}

        def program(rank):
            got = yield rank.allreduce(world.comm_world, np.array([float(rank.rank)]), op="max")
            results[rank.rank] = got

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[0], [7.0])

    def test_unsupported_op_rejected(self, world):
        def program(rank):
            yield rank.allreduce(world.comm_world, np.zeros(1), op="prod")

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="unsupported"):
            world.run()


class TestGather:
    def test_gather_collects_in_rank_order(self, world):
        results = {}

        def program(rank):
            got = yield rank.gather(world.comm_world, root=0, payload=np.array([float(rank.rank)]))
            results[rank.rank] = got

        world.launch(program)
        world.run()
        assert results[1] is None
        np.testing.assert_allclose(np.concatenate(results[0]), np.arange(8.0))


class TestSplit:
    def test_split_into_task_groups(self, world):
        """The FFTXlib layout: 2 groups of 4 by color = rank % 2."""
        comms = {}

        def program(rank):
            sub = yield rank.split(world.comm_world, color=rank.rank % 2, order_key=rank.rank)
            comms[rank.rank] = sub

        world.launch(program)
        world.run()
        assert comms[0].ranks == (0, 2, 4, 6)
        assert comms[1].ranks == (1, 3, 5, 7)
        assert comms[0] is comms[2]
        assert comms[0].size == 4

    def test_negative_color_excluded(self, world):
        comms = {}

        def program(rank):
            color = 0 if rank.rank < 4 else -1
            sub = yield rank.split(world.comm_world, color=color, order_key=rank.rank)
            comms[rank.rank] = sub

        world.launch(program)
        world.run()
        assert comms[7] is None
        assert comms[0].ranks == (0, 1, 2, 3)

    def test_subcommunicator_collectives_work(self, world):
        results = {}

        def program(rank):
            sub = yield rank.split(world.comm_world, color=rank.rank // 4, order_key=rank.rank)
            got = yield rank.allreduce(sub, np.array([1.0]), op="sum")
            results[rank.rank] = got

        world.launch(program)
        world.run()
        np.testing.assert_allclose(results[0], [4.0])
        np.testing.assert_allclose(results[7], [4.0])

    def test_local_rank_mapping(self, world):
        comms = {}

        def program(rank):
            sub = yield rank.split(world.comm_world, color=rank.rank % 2, order_key=rank.rank)
            comms[rank.rank] = sub

        world.launch(program)
        world.run()
        assert comms[4].local_rank(4) == 2
        with pytest.raises(MpiSimError, match="not a member"):
            comms[0].local_rank(1)
