"""Edge cases of point-to-point matching: unmatched, zero-byte, self-sends."""

import numpy as np
import pytest

from repro.mpisim import MetaPayload
from repro.mpisim.communicator import MpiSimError
from repro.simkit import DeadlockError


class TestUnmatched:
    def test_send_without_recv_deadlocks(self, world):
        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=MetaPayload(8.0))

        world.launch(sender, ranks=[0])
        with pytest.raises(DeadlockError):
            world.run()

    def test_recv_without_send_deadlocks(self, world):
        def receiver(rank):
            yield rank.recv(world.comm_world, src_local=1, tag=0)

        world.launch(receiver, ranks=[0])
        with pytest.raises(DeadlockError):
            world.run()

    def test_tag_mismatch_never_matches(self, world):
        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=MetaPayload(8.0), tag=1)

        def receiver(rank):
            yield rank.recv(world.comm_world, src_local=0, tag=2)

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        with pytest.raises(DeadlockError):
            world.run()

    def test_wrong_direction_never_matches(self, world):
        # Rank 0 sends to 1, but rank 2 (not 1) posts the receive.
        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=MetaPayload(8.0))

        def receiver(rank):
            yield rank.recv(world.comm_world, src_local=0, tag=0)

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[2])
        with pytest.raises(DeadlockError):
            world.run()


class TestZeroByte:
    def test_zero_byte_message_completes_at_latency(self, world):
        got = {}

        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=MetaPayload(0.0))

        def receiver(rank):
            got["payload"] = yield rank.recv(world.comm_world, src_local=0)
            got["t"] = rank.sim.now

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        world.run()
        assert got["payload"] == MetaPayload(0.0)
        # No bytes moved: the pair costs exactly one message latency (1 us).
        assert got["t"] == pytest.approx(1.0e-6)

    def test_zero_length_array(self, world):
        got = {}

        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=np.zeros(0))

        def receiver(rank):
            got["payload"] = yield rank.recv(world.comm_world, src_local=0)

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        world.run()
        assert isinstance(got["payload"], np.ndarray)
        assert got["payload"].size == 0


class TestSelfSend:
    def test_self_send_posted_before_recv(self, world):
        got = {}

        def program(rank):
            # Posting does not block — only yielding does — so a rank may
            # match its own send as long as both are posted before waiting.
            send_ev = rank.send(world.comm_world, dst_local=0, payload=np.arange(4.0))
            got["payload"] = yield rank.recv(world.comm_world, src_local=0)
            yield send_ev

        world.launch(program, ranks=[0])
        world.run()
        np.testing.assert_array_equal(got["payload"], np.arange(4.0))

    def test_self_send_receives_a_copy(self, world):
        original = np.ones(3)
        got = {}

        def program(rank):
            send_ev = rank.send(world.comm_world, dst_local=0, payload=original)
            got["payload"] = yield rank.recv(world.comm_world, src_local=0)
            yield send_ev

        world.launch(program, ranks=[0])
        world.run()
        got["payload"][0] = 99.0
        assert original[0] == 1.0

    def test_blocking_self_send_deadlocks(self, world):
        def program(rank):
            # Waiting on the send before posting the receive can never
            # complete — the classic single-rank self-send hang.
            yield rank.send(world.comm_world, dst_local=0, payload=MetaPayload(8.0))
            yield rank.recv(world.comm_world, src_local=0)

        world.launch(program, ranks=[0])
        with pytest.raises(DeadlockError):
            world.run()


class TestBounds:
    def test_send_destination_out_of_range(self, world):
        def program(rank):
            yield rank.send(world.comm_world, dst_local=8, payload=MetaPayload(1.0))

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError):
            world.run()

    def test_recv_source_out_of_range(self, world):
        def program(rank):
            yield rank.recv(world.comm_world, src_local=-1)

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError):
            world.run()


class TestOrdering:
    def test_two_sends_same_signature_match_fifo(self, world):
        got = {}

        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=np.array([1.0]))
            yield rank.send(world.comm_world, dst_local=1, payload=np.array([2.0]))

        def receiver(rank):
            first = yield rank.recv(world.comm_world, src_local=0)
            second = yield rank.recv(world.comm_world, src_local=0)
            got["order"] = (first[0], second[0])

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        world.run()
        assert got["order"] == (1.0, 2.0)
