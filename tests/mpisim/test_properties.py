"""Hypothesis property tests for the simulated MPI collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CpuModel, NodeTopology, PhaseProfile, PhaseTable
from repro.mpisim import MetaPayload, MpiWorld, NetworkModel
from repro.simkit import Simulator

FREQ = 1.0e9


def build_world(n_ranks):
    sim = Simulator()
    topo = NodeTopology(n_cores=max(n_ranks, 2), threads_per_core=2, frequency_hz=FREQ)
    table = PhaseTable([PhaseProfile("work", ipc0=1.0, bytes_per_instr=0.0)])
    cpu = CpuModel(sim, topo, table, bandwidth_bytes_per_s=1e12)
    net = NetworkModel(sim, capacity=8e9, injection_bw=1e9, latency=1e-6)
    return MpiWorld(sim, cpu, net, n_ranks=n_ranks)


class TestAlltoallProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_ranks=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_exchange_is_a_transpose(self, n_ranks, seed):
        """recv[i][j] == send[j][i] for arbitrary payload matrices."""
        rng = np.random.default_rng(seed)
        sizes = rng.integers(0, 5, size=(n_ranks, n_ranks))
        world = build_world(n_ranks)
        sent = {}
        received = {}

        def program(rank):
            parts = [
                np.full(sizes[rank.rank, j], 10.0 * rank.rank + j)
                for j in range(n_ranks)
            ]
            sent[rank.rank] = parts
            recv = yield rank.alltoall(world.comm_world, parts)
            received[rank.rank] = recv

        world.launch(program)
        world.run()
        for i in range(n_ranks):
            for j in range(n_ranks):
                np.testing.assert_array_equal(received[i][j], sent[j][i])

    @settings(max_examples=20, deadline=None)
    @given(
        n_ranks=st.integers(min_value=2, max_value=6),
        nbytes=st.floats(min_value=1.0, max_value=1e7),
    )
    def test_completion_time_scales_with_bytes(self, n_ranks, nbytes):
        """The alltoall never completes before the transport could move the
        off-diagonal volume at aggregate capacity."""
        world = build_world(n_ranks)
        finish = {}

        def program(rank):
            parts = [MetaPayload(nbytes)] * n_ranks
            yield rank.alltoall(world.comm_world, parts)
            finish[rank.rank] = rank.sim.now

        world.launch(program)
        world.run()
        total_bytes = n_ranks * (n_ranks - 1) * nbytes
        lower_bound = total_bytes / 8e9
        assert min(finish.values()) >= lower_bound * (1 - 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_allreduce_matches_numpy_sum(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((4, 6))
        world = build_world(4)
        results = {}

        def program(rank):
            got = yield rank.allreduce(world.comm_world, data[rank.rank].copy(), op="sum")
            results[rank.rank] = got

        world.launch(program)
        world.run()
        for r in range(4):
            np.testing.assert_allclose(results[r], data.sum(axis=0), rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        colors=st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=6),
    )
    def test_split_partitions_world(self, colors):
        n = len(colors)
        world = build_world(n)
        comms = {}

        def program(rank):
            sub = yield rank.split(
                world.comm_world, color=colors[rank.rank], order_key=rank.rank
            )
            comms[rank.rank] = sub

        world.launch(program)
        world.run()
        # Each rank landed in the communicator of its color; communicators
        # partition the world.
        seen = set()
        for r, comm in comms.items():
            assert r in comm
            members = set(comm.ranks)
            expected = {i for i in range(n) if colors[i] == colors[r]}
            assert members == expected
            seen |= members
        assert seen == set(range(n))
