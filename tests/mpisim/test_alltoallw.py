"""Semantics + cost tests for the pack-free MPI_Alltoallw analogue.

The exchange must move elements straight between flat buffers per the
block descriptors (no staging copy), enforce the per-pair conservation
law, and — critically for the perf story — price *identically* to an
``alltoall`` of the same byte volumes, so switching the data plane to
pack-free descriptors never perturbs the simulated timeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import BlockType, MetaPayload, MpiSimError

from .test_properties import build_world


def unit_blocks(size, offsets):
    """One element per peer: peer ``j``'s element lives at ``offsets[j]``."""
    return [BlockType.strided(offsets[j], 1, 1, 1) for j in range(size)]


class TestMovement:
    def test_transpose_between_flat_buffers(self, world):
        """recvbuf[i] on rank j must be sendbuf[j] of rank i (incl. diagonal)."""
        results = {}
        n = world.comm_world.size

        def program(rank):
            sendbuf = np.array(
                [100.0 * rank.rank + j for j in range(n)], dtype=np.complex128
            )
            recvbuf = np.zeros(n, dtype=np.complex128)
            got = yield rank.alltoallw(
                world.comm_world,
                sendbuf,
                recvbuf,
                unit_blocks(n, list(range(n))),
                unit_blocks(n, list(range(n))),
            )
            assert got is recvbuf
            results[rank.rank] = recvbuf

        world.launch(program)
        world.run()
        for j in range(n):
            np.testing.assert_allclose(
                results[j], [100.0 * i + j for i in range(n)]
            )

    def test_indexed_blocks_scatter_into_slots(self, world):
        """Indexed descriptors land each element exactly where addressed."""
        results = {}
        n = world.comm_world.size

        def program(rank):
            sendbuf = np.array(
                [100.0 * rank.rank + j for j in range(n)], dtype=np.complex128
            )
            recvbuf = np.full(n, -1.0, dtype=np.complex128)
            # Receive peer i's element into the mirrored slot n-1-i.
            recv_blocks = [BlockType.indexed([n - 1 - i]) for i in range(n)]
            yield rank.alltoallw(
                world.comm_world,
                sendbuf,
                recvbuf,
                unit_blocks(n, list(range(n))),
                recv_blocks,
            )
            results[rank.rank] = recvbuf

        world.launch(program)
        world.run()
        for j in range(n):
            np.testing.assert_allclose(
                results[j], [100.0 * (n - 1 - s) + j for s in range(n)]
            )

    def test_strided_blocks_cover_vector_regions(self):
        """MPI_Type_vector shapes: 2 blocks of 2 elements, stride 4 — the
        z-range-of-stick-columns pattern of the slab transpose."""
        world = build_world(2)
        results = {}

        def program(rank):
            sendbuf = np.arange(8, dtype=np.complex128) + 10.0 * rank.rank
            recvbuf = np.zeros(8, dtype=np.complex128)
            # Peer 0 owns columns {0,1}, peer 1 columns {2,3} of a 2x4 grid.
            send_blocks = [
                BlockType.strided(0, 2, 2, 4),
                BlockType.strided(2, 2, 2, 4),
            ]
            recv_blocks = [
                BlockType.strided(0, 1, 4, 4),
                BlockType.strided(4, 1, 4, 4),
            ]
            yield rank.alltoallw(
                world.comm_world, sendbuf, recvbuf, send_blocks, recv_blocks
            )
            results[rank.rank] = recvbuf

        world.launch(program)
        world.run()
        # Rank 0's recv rows: [own cols 0,1] then [rank 1's cols 0,1].
        np.testing.assert_allclose(results[0], [0, 1, 4, 5, 10, 11, 14, 15])
        np.testing.assert_allclose(results[1], [2, 3, 6, 7, 12, 13, 16, 17])

    def test_meta_blocks_move_no_data(self, world):
        """None buffers + meta blocks: cost charged, nothing moved."""
        finish = {}
        n = world.comm_world.size

        def program(rank):
            blocks = [BlockType.meta(1024) for _ in range(n)]
            got = yield rank.alltoallw(world.comm_world, None, None, blocks, blocks)
            assert got is None
            finish[rank.rank] = rank.sim.now

        world.launch(program)
        world.run()
        assert all(t > 0 for t in finish.values())


class TestContracts:
    def test_conservation_violation_raises(self):
        """src describing more elements toward dst than dst reserved is an
        error at the exchange, not silent corruption."""
        world = build_world(2)

        def program(rank):
            sendbuf = np.zeros(4, dtype=np.complex128)
            recvbuf = np.zeros(4, dtype=np.complex128)
            # Rank 0 sends 2 elements to rank 1, which only expects 1.
            count = 2 if rank.rank == 0 else 1
            send_blocks = [
                BlockType.strided(0, 1, 1, 1),
                BlockType.strided(1, 1, count, 1),
            ]
            recv_blocks = [
                BlockType.strided(0, 1, 1, 1),
                BlockType.strided(1, 1, 1, 1),
            ]
            yield rank.alltoallw(
                world.comm_world, sendbuf, recvbuf, send_blocks, recv_blocks
            )

        world.launch(program)
        with pytest.raises(MpiSimError, match="expects"):
            world.run()

    def test_noncontiguous_sendbuf_rejected(self, world):
        n = world.comm_world.size

        def program(rank):
            sendbuf = np.zeros((n, 2), dtype=np.complex128)[:, 0]  # strided view
            recvbuf = np.zeros(n, dtype=np.complex128)
            blocks = unit_blocks(n, list(range(n)))
            yield rank.alltoallw(world.comm_world, sendbuf, recvbuf, blocks, blocks)

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="C-contiguous"):
            world.run()

    def test_block_count_must_match_size(self, world):
        def program(rank):
            blocks = [BlockType.meta(1)] * 3
            yield rank.alltoallw(world.comm_world, None, None, blocks, blocks)

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="needs 8"):
            world.run()


class TestCostParity:
    @settings(max_examples=20, deadline=None)
    @given(
        n_ranks=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_prices_identically_to_alltoall(self, n_ranks, seed):
        """Same per-pair byte volumes => bit-identical completion times.

        This is the invariant that lets the data plane swap packed
        ``alltoall`` parts for pack-free descriptors without changing any
        simulated result: the cost model sees the same pair list.
        """
        rng = np.random.default_rng(seed)
        sizes = rng.integers(0, 64, size=(n_ranks, n_ranks))

        def run_packed():
            world = build_world(n_ranks)
            finish = {}

            def program(rank):
                parts = [
                    MetaPayload(16.0 * sizes[rank.rank, j]) for j in range(n_ranks)
                ]
                yield rank.alltoall(world.comm_world, parts)
                finish[rank.rank] = rank.sim.now

            world.launch(program)
            world.run()
            return finish

        def run_packfree():
            world = build_world(n_ranks)
            finish = {}

            def program(rank):
                send_blocks = [
                    BlockType.meta(int(sizes[rank.rank, j])) for j in range(n_ranks)
                ]
                recv_blocks = [
                    BlockType.meta(int(sizes[i, rank.rank])) for i in range(n_ranks)
                ]
                yield rank.alltoallw(
                    world.comm_world, None, None, send_blocks, recv_blocks
                )
                finish[rank.rank] = rank.sim.now

            world.launch(program)
            world.run()
            return finish

        assert run_packed() == run_packfree()


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        n_ranks=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_forward_then_swapped_inverse_is_identity(self, n_ranks, seed):
        """A ragged exchange followed by its swapped twin restores every
        buffer bit-for-bit, and bytes sent per pair equal bytes received."""
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 4, size=(n_ranks, n_ranks))

        def layouts(matrix):
            """Per-rank concatenated offsets for row-major chunk layout."""
            offs = np.zeros_like(matrix)
            offs[:, 1:] = np.cumsum(matrix[:, :-1], axis=1)
            return offs

        send_offs = layouts(counts)            # rank i's sendbuf: chunks by dst
        recv_offs = layouts(counts.T)          # rank j's recvbuf: chunks by src
        originals = {}
        recovered = {}

        def blocks_for(matrix, offs, i):
            return [
                BlockType.strided(offs[i, j], 1, int(matrix[i, j]), max(int(matrix[i, j]), 1))
                for j in range(n_ranks)
            ]

        world = build_world(n_ranks)

        def program(rank):
            i = rank.rank
            sendbuf = (
                rng.standard_normal(int(counts[i].sum()))
                + 1j * rng.standard_normal(int(counts[i].sum()))
            ).astype(np.complex128)
            originals[i] = sendbuf.copy()
            recvbuf = np.zeros(int(counts[:, i].sum()), dtype=np.complex128)
            send_blocks = blocks_for(counts, send_offs, i)
            recv_blocks = blocks_for(counts.T, recv_offs, i)
            yield rank.alltoallw(
                world.comm_world, sendbuf, recvbuf, send_blocks, recv_blocks
            )
            # Inverse: swap the roles of the two plans and the two buffers.
            back = np.zeros_like(sendbuf)
            yield rank.alltoallw(
                world.comm_world, recvbuf, back, recv_blocks, send_blocks
            )
            recovered[i] = back
            # Conservation, per pair: what i describes toward j is exactly
            # what j reserved for i.
            for j in range(n_ranks):
                assert send_blocks[j].nbytes == 16.0 * counts[i, j]
                assert recv_blocks[j].nbytes == 16.0 * counts[j, i]

        world.launch(program)
        world.run()
        for i in range(n_ranks):
            np.testing.assert_array_equal(recovered[i], originals[i])
