"""Tests for the MPI world, rank contexts, p2p, observers, and payload helpers."""

import numpy as np
import pytest

from repro.mpisim import MetaPayload, MpiWorld, nbytes_of, payload_like
from repro.mpisim.communicator import MpiSimError
from tests.mpisim.conftest import make_world


class TestPayloads:
    def test_nbytes_of_array(self):
        assert nbytes_of(np.zeros(4, dtype=np.float64)) == 32.0

    def test_nbytes_of_meta(self):
        assert nbytes_of(MetaPayload(100.0)) == 100.0

    def test_negative_meta_rejected(self):
        with pytest.raises(ValueError):
            MetaPayload(-1.0)

    def test_non_payload_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of([1, 2, 3])
        with pytest.raises(TypeError):
            payload_like("hello")

    def test_payload_like_copies_arrays(self):
        a = np.ones(3)
        b = payload_like(a)
        b[0] = 99.0
        assert a[0] == 1.0

    def test_payload_like_passes_meta_through(self):
        m = MetaPayload(5.0, count=2)
        assert payload_like(m) is m

    def test_meta_equality(self):
        assert MetaPayload(5.0) == MetaPayload(5.0)
        assert MetaPayload(5.0) != MetaPayload(6.0)


class TestWorldSetup:
    def test_invalid_rank_count(self, sim, cpu, network):
        with pytest.raises(ValueError):
            MpiWorld(sim, cpu, network, n_ranks=0)

    def test_invalid_thread_count(self, sim, cpu, network):
        with pytest.raises(ValueError):
            MpiWorld(sim, cpu, network, n_ranks=2, threads_per_rank=0)

    def test_comm_world_covers_all_ranks(self, world):
        assert world.comm_world.ranks == tuple(range(8))
        assert world.comm_world.size == 8

    def test_threads_per_rank_binding(self, sim, cpu, network):
        w = make_world(sim, cpu, network, n_ranks=4, threads_per_rank=4)
        ctx = w.ranks[1]
        assert ctx.n_threads == 4
        threads = {ctx.thread(t) for t in range(4)}
        assert len(threads) == 4
        with pytest.raises(ValueError):
            ctx.thread(4)

    def test_stream_ids(self, sim, cpu, network):
        w = make_world(sim, cpu, network, n_ranks=2, threads_per_rank=2)
        assert w.ranks[1].stream(1) == (1, 1)


class TestCompute:
    def test_compute_runs_on_rank_thread(self, world):
        durations = {}

        def program(rank):
            rec = yield rank.compute("work", 1.0e9)
            durations[rank.rank] = rec.duration

        world.launch(program)
        world.run()
        # ipc0=1.0 at 1 GHz, no contention: 1e9 instructions in 1 s.
        assert durations[3] == pytest.approx(1.0)

    def test_counters_attributed_to_streams(self, world):
        def program(rank):
            yield rank.compute("work", 1.0e9)

        world.launch(program)
        world.run()
        assert world.cpu.counters.stream_instructions((5, 0)) == pytest.approx(1.0e9)


class TestP2P:
    def test_send_recv_roundtrip(self, world):
        got = {}

        def sender(rank):
            yield rank.send(world.comm_world, dst_local=1, payload=np.arange(3.0), tag=7)

        def receiver(rank):
            data = yield rank.recv(world.comm_world, src_local=0, tag=7)
            got["data"] = data
            got["time"] = rank.sim.now

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        world.run()
        np.testing.assert_allclose(got["data"], [0.0, 1.0, 2.0])
        # 24 B at 1 GB/s injection + 1 us latency: latency dominates.
        assert got["time"] == pytest.approx(1.0e-6 + 24 / 1.0e9, rel=1e-6)

    def test_recv_before_send_matches(self, world):
        got = {}

        def receiver(rank):
            data = yield rank.recv(world.comm_world, src_local=2, tag=0)
            got["data"] = data

        def sender(rank):
            yield rank.sim.timeout(1.0e-3)
            yield rank.send(world.comm_world, dst_local=0, payload=MetaPayload(64.0))

        world.launch(receiver, ranks=[0])
        world.launch(sender, ranks=[2])
        world.run()
        assert got["data"] == MetaPayload(64.0)

    def test_tag_separation(self, world):
        got = {}

        def sender(rank):
            rank.send(world.comm_world, 1, np.array([1.0]), tag=1)
            rank.send(world.comm_world, 1, np.array([2.0]), tag=2)
            yield rank.sim.timeout(0)

        def receiver(rank):
            b = yield rank.recv(world.comm_world, 0, tag=2)
            a = yield rank.recv(world.comm_world, 0, tag=1)
            got["order"] = (float(b[0]), float(a[0]))

        world.launch(sender, ranks=[0])
        world.launch(receiver, ranks=[1])
        world.run()
        assert got["order"] == (2.0, 1.0)

    def test_bad_destination_raises(self, world):
        def program(rank):
            yield rank.send(world.comm_world, dst_local=100, payload=MetaPayload(1.0))

        world.launch(program, ranks=[0])
        with pytest.raises(MpiSimError, match="out of range"):
            world.run()


class TestObservers:
    def test_mpi_records_emitted(self, world):
        records = []
        world.add_mpi_observer(records.append)

        def program(rank):
            yield rank.barrier(world.comm_world)
            yield rank.alltoall(world.comm_world, [MetaPayload(1000.0)] * 8)

        world.launch(program)
        world.run()
        calls = [r.call for r in records]
        assert calls.count("barrier") == 8
        assert calls.count("alltoall") == 8
        a2a = [r for r in records if r.call == "alltoall"][0]
        assert a2a.bytes_sent == pytest.approx(7000.0)
        assert a2a.duration > 0
        assert a2a.comm_name == "world"

    def test_sync_time_reflects_late_arrival(self, world):
        records = []
        world.add_mpi_observer(records.append)

        def program(rank):
            if rank.rank == 0:
                yield rank.sim.timeout(1.0e-3)  # rank 0 arrives late
            yield rank.barrier(world.comm_world)

        world.launch(program)
        world.run()
        by_stream = {r.stream: r for r in records}
        assert by_stream[(0, 0)].sync_time == pytest.approx(0.0, abs=1e-9)
        assert by_stream[(1, 0)].sync_time == pytest.approx(1.0e-3, rel=1e-6)
        # duration >= sync_time, transfer share non-negative
        assert all(r.transfer_time >= 0 for r in records)

    def test_network_byte_accounting(self, world):
        def program(rank):
            yield rank.alltoall(world.comm_world, [MetaPayload(100.0)] * 8)

        world.launch(program)
        world.run()
        assert world.network.bytes_transferred == pytest.approx(8 * 700.0)
