"""Tests for the real-input transforms (packed complex trick)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.realfft import irfft, rfft

RNG = np.random.default_rng(5)


class TestRfft:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 12, 20, 30, 60, 64, 100, 128])
    def test_matches_numpy(self, n):
        x = RNG.standard_normal((4, n))
        np.testing.assert_allclose(
            rfft(x), np.fft.rfft(x, axis=-1), rtol=1e-10, atol=1e-10
        )

    def test_axis_argument(self):
        x = RNG.standard_normal((6, 8, 5))
        np.testing.assert_allclose(
            rfft(x, axis=1), np.fft.rfft(x, axis=1), rtol=1e-10, atol=1e-10
        )

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="even"):
            rfft(np.zeros(7))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="even"):
            rfft(np.zeros(1))

    def test_nyquist_and_dc_are_real(self):
        x = RNG.standard_normal(16)
        spec = rfft(x)
        assert abs(spec[0].imag) < 1e-12
        assert abs(spec[-1].imag) < 1e-12

    def test_output_length(self):
        assert rfft(np.zeros(10)).shape == (6,)


class TestIrfft:
    @pytest.mark.parametrize("n", [2, 4, 8, 12, 30, 64])
    def test_roundtrip(self, n):
        x = RNG.standard_normal((3, n))
        np.testing.assert_allclose(irfft(rfft(x)), x, rtol=1e-10, atol=1e-10)

    def test_matches_numpy(self):
        spec = np.fft.rfft(RNG.standard_normal(24))
        np.testing.assert_allclose(irfft(spec), np.fft.irfft(spec), rtol=1e-10, atol=1e-10)

    def test_axis_argument(self):
        x = RNG.standard_normal((12, 5))  # transform axis 0, length 12 (even)
        spec = rfft(x, axis=0)
        np.testing.assert_allclose(irfft(spec, axis=0), x, rtol=1e-10, atol=1e-10)

    def test_too_few_coefficients_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            irfft(np.zeros(1, dtype=complex))

    @settings(max_examples=40, deadline=None)
    @given(
        n_half=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_roundtrip_property(self, n_half, seed):
        x = np.random.default_rng(seed).standard_normal(2 * n_half)
        np.testing.assert_allclose(irfft(rfft(x)), x, rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parseval_property(self, seed):
        x = np.random.default_rng(seed).standard_normal(32)
        spec = rfft(x)
        # Real-FFT Parseval: interior bins count twice (conjugate partners).
        energy = (
            np.abs(spec[0]) ** 2
            + np.abs(spec[-1]) ** 2
            + 2 * np.sum(np.abs(spec[1:-1]) ** 2)
        ) / 32
        np.testing.assert_allclose(energy, np.sum(x**2), rtol=1e-9)
