"""Tests for the full 3D transform convenience."""

import numpy as np
import pytest

from repro.fft import cfft3d

RNG = np.random.default_rng(31)


def random_grid(*shape):
    return RNG.standard_normal(shape) + 1j * RNG.standard_normal(shape)


class TestCfft3d:
    def test_matches_numpy(self):
        x = random_grid(12, 10, 15)
        np.testing.assert_allclose(cfft3d(x, +1), np.fft.ifftn(x) * x.size, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(cfft3d(x, -1), np.fft.fftn(x) / x.size, rtol=1e-9, atol=1e-9)

    def test_roundtrip(self):
        x = random_grid(8, 9, 10)
        np.testing.assert_allclose(cfft3d(cfft3d(x, +1), -1), x, rtol=1e-9, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="3D"):
            cfft3d(random_grid(4, 4), +1)

    def test_sign_validation(self):
        with pytest.raises(ValueError, match="sign"):
            cfft3d(random_grid(4, 4, 4), 0)

    def test_paper_grid_dimension(self):
        """One 120^3 transform (the paper workload's grid) stays accurate."""
        x = random_grid(120, 30, 4)  # anisotropic stand-in keeps it quick
        np.testing.assert_allclose(
            cfft3d(x, +1), np.fft.ifftn(x) * x.size, rtol=1e-8, atol=1e-8
        )
