"""Plan cache (thread-safe bounded LRU) and precomputed contraction paths."""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.fft.batched import cft_1z, cft_2xy
from repro.fft.mixed_radix import execute_plan, fft_last_axis
from repro.fft.plan import Plan, clear_plan_cache, get_plan, plan_cache_stats

RNG = np.random.default_rng(42)


def random_complex(*shape):
    return RNG.standard_normal(shape) + 1j * RNG.standard_normal(shape)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestBoundedLru:
    def test_identity_and_counters(self):
        a = get_plan(48, -1)
        assert get_plan(48, -1) is a
        stats = plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["size"] == 1
        assert stats["evictions"] == 0

    def test_clear_resets(self):
        get_plan(48, -1)
        clear_plan_cache()
        stats = plan_cache_stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 0,
            "maxsize": stats["maxsize"],
        }

    def test_capacity_bound_evicts_lru(self, monkeypatch):
        import repro.fft.plan as plan_mod

        monkeypatch.setattr(plan_mod, "_PLAN_CACHE_MAX", 4)
        first = get_plan(8, -1)
        for n in (16, 32, 64, 128):
            get_plan(n, -1)
        stats = plan_cache_stats()
        assert stats["size"] == 4
        assert stats["evictions"] == 1
        # The evicted entry (8, the LRU end) is rebuilt on next use.
        assert get_plan(8, -1) is not first
        assert plan_cache_stats()["misses"] == 6

    def test_lru_order_refreshed_by_hits(self, monkeypatch):
        import repro.fft.plan as plan_mod

        monkeypatch.setattr(plan_mod, "_PLAN_CACHE_MAX", 2)
        a = get_plan(8, -1)
        get_plan(16, -1)
        assert get_plan(8, -1) is a  # refresh 8: now 16 is the LRU entry
        get_plan(32, -1)  # evicts 16, not 8
        assert get_plan(8, -1) is a
        assert plan_cache_stats()["evictions"] == 1

    def test_eviction_metric_counted(self, monkeypatch):
        import repro.fft.plan as plan_mod

        monkeypatch.setattr(plan_mod, "_PLAN_CACHE_MAX", 1)
        with telemetry.session() as tel:
            get_plan(8, -1)
            get_plan(16, -1)
        snapshot = tel.metrics.snapshot()
        assert snapshot["fft.plan_cache_misses"]["series"][0]["value"] == 2
        assert snapshot["fft.plan_cache_evictions"]["series"][0]["value"] == 1

    def test_hit_miss_metrics_preserved(self):
        with telemetry.session() as tel:
            get_plan(48, -1)
            get_plan(48, -1)
        snapshot = tel.metrics.snapshot()
        assert snapshot["fft.plan_cache_hits"]["series"][0]["value"] == 1
        assert snapshot["fft.plan_cache_misses"]["series"][0]["value"] == 1

    def test_concurrent_lookups_share_one_plan(self):
        sizes = [12, 18, 24, 30, 36, 48, 60, 96]
        results: dict[int, list] = {n: [] for n in sizes}
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(50):
                for n in sizes:
                    results[n].append(get_plan(n, -1))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for n in sizes:
            assert all(p is results[n][0] for p in results[n])
        stats = plan_cache_stats()
        assert stats["hits"] + stats["misses"] == 8 * 50 * len(sizes)
        assert stats["misses"] == len(sizes)


class TestContractPath:
    def test_levels_carry_precomputed_path(self):
        plan = get_plan(60, -1)
        assert plan.levels
        for lvl in plan.levels:
            # A usable einsum path: accepted verbatim by np.einsum.
            z = random_complex(3, lvl.r, lvl.m)
            with_path = np.einsum(
                "ks,...sm->...km", lvl.radix_dft, z, optimize=lvl.contract_path
            )
            searched = np.einsum("ks,...sm->...km", lvl.radix_dft, z, optimize=True)
            np.testing.assert_array_equal(with_path, searched)

    def test_direct_plan_construction_matches_cached(self):
        direct = Plan(48, -1)
        cached = get_plan(48, -1)
        x = random_complex(5, 48)
        np.testing.assert_array_equal(execute_plan(x, direct), execute_plan(x, cached))


class TestOutBuffers:
    """out= destinations must be bit-identical to fresh results."""

    @pytest.mark.parametrize("n", [8, 15, 30, 35, 48, 97])
    @pytest.mark.parametrize("sign", [-1, 1])
    def test_fft_last_axis_out(self, n, sign):
        x = random_complex(7, n)
        fresh = fft_last_axis(x, sign)
        out = np.empty_like(x)
        got = fft_last_axis(x, sign, out=out)
        assert got is out
        np.testing.assert_array_equal(
            fresh.view(np.float64), out.view(np.float64)
        )

    def test_execute_plan_noncontiguous_out_falls_back(self):
        x = random_complex(4, 24)
        fresh = execute_plan(x, get_plan(24, -1))
        out = np.empty((4, 48), dtype=np.complex128)[:, ::2]
        assert not out.flags.c_contiguous
        got = execute_plan(x, get_plan(24, -1), out=out)
        assert got is out
        np.testing.assert_array_equal(np.ascontiguousarray(got), fresh)

    @pytest.mark.parametrize("sign", [-1, 1])
    def test_cft_1z_out(self, sign):
        sticks = random_complex(11, 30)
        fresh = cft_1z(sticks, sign)
        out = np.empty_like(sticks)
        got = cft_1z(sticks, sign, out=out)
        assert got is out
        np.testing.assert_array_equal(fresh.view(np.float64), out.view(np.float64))

    @pytest.mark.parametrize("sign", [-1, 1])
    def test_cft_2xy_out(self, sign):
        planes = random_complex(3, 12, 10)
        fresh = cft_2xy(planes, sign)
        out = np.empty_like(planes)
        got = cft_2xy(planes, sign, out=out)
        assert got is out
        np.testing.assert_array_equal(
            np.ascontiguousarray(fresh).view(np.float64), out.view(np.float64)
        )
