"""Hypothesis property tests run per backend, through the backend plane.

The PR 3 suite (:mod:`tests.fft.test_property_kernels`) pins these DFT
identities for the pure-python kernels; this file runs them through the
*backend interface* instead, for every available backend, so a backend
whose convention mapping is subtly wrong (a missing ``1/N``, a conjugated
exponent, a dropped Nyquist term) fails on mathematics, not just on the
differential diff:

* **linearity** — ``F(a·x + b·y) == a·F(x) + b·F(y)``;
* **Parseval** — for the unscaled ``sign=+1`` transform,
  ``‖F(x)‖² == N·‖x‖²``;
* **inverse round-trip** — ``sign=-1`` then ``sign=+1`` is the identity
  (the QE scaling puts ``1/N`` on the R→G direction, so the pair composes
  to 1 with no extra factor);
* **rfft Hermitian symmetry** — the full spectrum reconstructed from the
  packed half obeys ``X[k] == conj(X[n-k])``.

Backends that cannot import skip with their probe reason (never silently).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.backends import get_backend, known_backends

#: (nbatch, n) grid for the 1D properties; n is a QE-admissible 2/3/5 size
#: and even (so the native packed rfft applies too).
N_BATCH = 4
SIZES = (12, 20, 24, 36)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.sampled_from(SIZES)


def _require(name: str):
    backend = get_backend(name, require_available=False)
    available, note = backend.availability()
    if not available:
        pytest.skip(f"backend {name!r} unavailable: {note}")
    return backend


def _batch(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((N_BATCH, n)) + 1j * rng.standard_normal((N_BATCH, n))


@pytest.mark.parametrize("name", known_backends())
class TestBackendProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=sizes)
    def test_linearity(self, name, seed, n):
        exe = _require(name).plan("c2c_1d", (N_BATCH, n))
        x = _batch(seed, n)
        y = _batch(seed + 1, n)
        a, b = 1.25, -0.5 + 2.0j
        combined = exe(a * x + b * y, 1)
        separate = a * exe(x, 1) + b * exe(y, 1)
        np.testing.assert_allclose(combined, separate, rtol=1e-10, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=sizes)
    def test_parseval_unscaled_forward(self, name, seed, n):
        exe = _require(name).plan("c2c_1d", (N_BATCH, n))
        x = _batch(seed, n)
        spectrum = exe(x, 1)
        energy_x = np.sum(np.abs(x) ** 2, axis=-1)
        energy_f = np.sum(np.abs(spectrum) ** 2, axis=-1)
        np.testing.assert_allclose(energy_f, n * energy_x, rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=sizes)
    def test_roundtrip_is_identity(self, name, seed, n):
        exe = _require(name).plan("c2c_1d", (N_BATCH, n))
        x = _batch(seed, n)
        np.testing.assert_allclose(exe(exe(x, -1), 1), x, rtol=1e-10, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=sizes)
    def test_roundtrip_2d_is_identity(self, name, seed, n):
        shape = (3, n, 10)
        exe = _require(name).plan("c2c_2d", shape)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        np.testing.assert_allclose(exe(exe(x, -1), 1), x, rtol=1e-10, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=sizes)
    def test_rfft_hermitian_symmetry(self, name, seed, n):
        exe = _require(name).plan("rfft", (N_BATCH, n), dtype="float64")
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((N_BATCH, n))
        half = exe(x, -1)
        # Rebuild the full spectrum from the packed half and check the
        # defining symmetry of a real signal's DFT, X[k] == conj(X[n-k]).
        full = np.concatenate([half, np.conj(half[..., -2:0:-1])], axis=-1)
        assert full.shape[-1] == n
        np.testing.assert_allclose(
            full, np.conj(full[..., (-np.arange(n)) % n]), rtol=1e-10, atol=1e-10
        )
        # DC and Nyquist bins of a real signal are real.
        np.testing.assert_allclose(half[..., 0].imag, 0.0, atol=1e-10)
        np.testing.assert_allclose(half[..., -1].imag, 0.0, atol=1e-10)
