"""Property tests over the kernel-path size sweep: seeded random spectra.

The plan machinery routes a size to one of three kernel paths — pure
mixed-radix Cooley–Tukey chains, chains whose factors are pairwise coprime
(the Good–Thomas-eligible sizes, including the single 7/11 factors QE's
``good_fft_order`` admits), and the Bluestein chirp-z fallback for large
prime factors.  For every path this file checks, on hypothesis-seeded
random spectra:

* round-trip identity ``ifft(fft(x)) == x``,
* agreement with ``numpy.fft`` in both directions,
* for real input, the Hermitian symmetry of the spectrum and the
  ``rfft``/``irfft`` pair against its numpy counterpart.

Unlike :mod:`tests.fft.test_transforms` (which sweeps small sizes), the
sweep here deliberately includes primes above 64 and sizes with repeated
prime factors — the corners where a decimation bug or a mis-sized chirp
pad would hide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft, get_plan, ifft, irfft, rfft

#: Pure small-radix chains (2/3/5 products: the good-order grid sizes).
MIXED_RADIX_SIZES = [48, 60, 90, 96, 120, 144, 150, 180]

#: Pairwise-coprime factorisations (Good–Thomas-eligible), incl. the QE
#: good-order single factors of 7 and 11.
COPRIME_SIZES = [35, 63, 77, 99, 105, 112, 176]

#: Sizes whose plan bottoms out in the Bluestein chirp-z fallback —
#: primes above the radix table, including primes > 64.
BLUESTEIN_SIZES = [17, 31, 67, 97, 101, 127]

#: Repeated prime factors (prime powers and near-powers).
REPEATED_FACTOR_SIZES = [27, 49, 81, 121, 125, 169, 243]

ALL_SIZES = (
    MIXED_RADIX_SIZES + COPRIME_SIZES + BLUESTEIN_SIZES + REPEATED_FACTOR_SIZES
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def seeded_spectrum(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestPlanPaths:
    """The size classes really exercise the paths they claim to."""

    @pytest.mark.parametrize("n", BLUESTEIN_SIZES)
    def test_bluestein_sizes_use_bluestein(self, n):
        assert get_plan(n, -1).uses_bluestein

    @pytest.mark.parametrize("n", MIXED_RADIX_SIZES + REPEATED_FACTOR_SIZES)
    def test_composite_sizes_avoid_bluestein(self, n):
        assert not get_plan(n, -1).uses_bluestein

    @pytest.mark.parametrize("n", ALL_SIZES)
    def test_plan_decomposition_multiplies_back(self, n):
        plan = get_plan(n, -1)
        product = plan.base_n
        for level in plan.levels:
            product *= level.r
        assert product == n


class TestRoundTrip:
    @pytest.mark.parametrize("n", ALL_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_ifft_inverts_fft(self, n, seed):
        x = seeded_spectrum(seed, n)
        np.testing.assert_allclose(ifft(fft(x)), x, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", ALL_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_fft_inverts_ifft(self, n, seed):
        x = seeded_spectrum(seed, n)
        np.testing.assert_allclose(fft(ifft(x)), x, rtol=1e-9, atol=1e-9)


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", ALL_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_forward_matches_numpy(self, n, seed):
        x = seeded_spectrum(seed, n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", ALL_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_inverse_matches_numpy(self, n, seed):
        x = seeded_spectrum(seed, n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", [105, 97, 121])
    @settings(max_examples=5, deadline=None)
    @given(seed=seeds)
    def test_batched_last_axis(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 4, n)) + 1j * rng.standard_normal((3, 4, n))
        np.testing.assert_allclose(
            fft(x), np.fft.fft(x, axis=-1), rtol=1e-9, atol=1e-9
        )


class TestRealHermitian:
    """Real input: Hermitian spectrum and the packed rfft/irfft pair."""

    # rfft's even/odd packing needs even lengths; keep one size per path.
    EVEN_SIZES = [48, 90, 112, 176, 2 * 67, 2 * 97, 2 * 121]

    @pytest.mark.parametrize("n", EVEN_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_full_spectrum_is_hermitian(self, n, seed):
        x = np.random.default_rng(seed).standard_normal(n)
        spectrum = fft(x)
        k = np.arange(n)
        np.testing.assert_allclose(
            spectrum[(-k) % n], np.conj(spectrum), rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("n", EVEN_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_rfft_matches_numpy(self, n, seed):
        x = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", EVEN_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_rfft_equals_full_fft_head(self, n, seed):
        x = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(
            rfft(x), fft(x)[: n // 2 + 1], rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("n", EVEN_SIZES)
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_irfft_round_trip(self, n, seed):
        x = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(irfft(rfft(x)), x, rtol=1e-9, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_irfft_imaginary_parts_vanish(self, seed):
        """A Hermitian spectrum inverts to a real signal (dtype included)."""
        n = 90
        x = np.random.default_rng(seed).standard_normal(n)
        back = irfft(rfft(x))
        assert back.dtype == np.float64
