"""Tests for QE-style good FFT orders and factorization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fft import allowed_fft_order, good_fft_order
from repro.fft.goodfft import factorize


class TestFactorize:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, {}),
            (2, {2: 1}),
            (12, {2: 2, 3: 1}),
            (60, {2: 2, 3: 1, 5: 1}),
            (97, {97: 1}),
            (2 * 3 * 5 * 7 * 11, {2: 1, 3: 1, 5: 1, 7: 1, 11: 1}),
        ],
    )
    def test_known_factorizations(self, n, expected):
        assert factorize(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @given(st.integers(min_value=1, max_value=100000))
    def test_product_reconstructs(self, n):
        factors = factorize(n)
        product = 1
        for p, m in factors.items():
            product *= p**m
        assert product == n


class TestAllowedOrder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 60, 72, 96, 120, 7, 11, 14, 33])
    def test_allowed(self, n):
        assert allowed_fft_order(n)

    @pytest.mark.parametrize("n", [13, 17, 49, 77, 121, 23, 97, 0, -4])
    def test_disallowed(self, n):
        assert not allowed_fft_order(n)

    def test_single_factor_7_or_11_only(self):
        assert allowed_fft_order(7 * 12)
        assert not allowed_fft_order(7 * 7 * 12)
        assert not allowed_fft_order(7 * 11)


class TestGoodOrder:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 2), (58, 60), (61, 63), (97, 99), (115, 120), (121, 125), (13, 14), (23, 24)],
    )
    def test_rounding(self, n, expected):
        assert good_fft_order(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            good_fft_order(0)

    def test_search_bound(self):
        with pytest.raises(ValueError):
            good_fft_order(101, max_order=101)  # 101 is prime

    @given(st.integers(min_value=1, max_value=2000))
    def test_result_is_allowed_and_ge_n(self, n):
        m = good_fft_order(n)
        assert m >= n
        assert allowed_fft_order(m)

    @given(st.integers(min_value=2, max_value=2000))
    def test_minimality(self, n):
        m = good_fft_order(n)
        assert all(not allowed_fft_order(k) for k in range(n, m))
