"""The differential backend-conformance suite (the PR 8 tentpole pin).

Swapping FFT kernels under a reproduction is only safe if every backend is
numerically equivalent — so every *registered* backend is checked against
the numpy/pocketfft reference over the full matrix:

    backend × {c2c_1d, c2c_2d, rfft} × {AoS, SoA} × {complex64, complex128}

in both directions (QE sign/scaling conventions), at the per-dtype
tolerances published in :mod:`repro.fft.backends.base`.  Unavailable
backends (pyFFTW in this container) **skip with their probe reason** —
never a silent pass — so a CI log always shows which backends were
actually verified.

Beyond values, this file pins the interface contracts the engine and the
data plane rely on: ``out=`` buffers are filled with bit-identical values
to the no-out path, output dtypes match the spec, malformed specs and
calls raise, and unknown/unavailable backends fail with clean errors.
"""

import numpy as np
import pytest

from repro.fft.backends import (
    CONFORMANCE_ATOL,
    CONFORMANCE_RTOL,
    KINDS,
    LAYOUTS,
    BackendUnavailableError,
    PlanSpec,
    get_backend,
    known_backends,
)
from repro.fft.backends.base import result_shape
from repro.fft.backends.soa import from_soa, to_soa

#: Batched shapes per kind: deliberately non-square, non-power-of-two
#: friendly (every axis is a 2/3/5 product — the grid family QE admits).
SHAPES = {"c2c_1d": (6, 30), "c2c_2d": (5, 12, 10), "rfft": (7, 24)}

COMPLEX_DTYPES = ("complex128", "complex64")


def _require(name: str):
    """The backend, or a visible skip carrying the availability reason."""
    backend = get_backend(name, require_available=False)
    available, note = backend.availability()
    if not available:
        pytest.skip(f"backend {name!r} unavailable: {note}")
    return backend


def _input_for(kind: str, cdtype: str, seed: int = 2017) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = SHAPES[kind]
    if kind == "rfft":
        real = {"complex128": np.float64, "complex64": np.float32}[cdtype]
        return rng.standard_normal(shape).astype(real)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return x.astype(cdtype)


def _reference(kind: str, x: np.ndarray, sign: int) -> np.ndarray:
    """The pocketfft reference in double precision, QE conventions."""
    x = np.asarray(x, dtype=np.float64 if kind == "rfft" else np.complex128)
    if kind == "rfft":
        return np.fft.rfft(x, axis=-1)
    axes = (-2, -1) if kind == "c2c_2d" else (-1,)
    if sign == 1:
        return np.fft.ifftn(x, axes=axes, norm="forward")
    return np.fft.fftn(x, axes=axes, norm="forward")


def _signs(kind: str) -> tuple[int, ...]:
    return (-1,) if kind == "rfft" else (1, -1)


class TestDifferentialConformance:
    """Every backend × kind × layout × dtype vs the pocketfft reference."""

    @pytest.mark.parametrize("dtype", COMPLEX_DTYPES)
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", known_backends())
    def test_matches_reference(self, name, kind, layout, dtype):
        backend = _require(name)
        x = _input_for(kind, dtype)
        in_dtype = x.dtype
        spec_dtype = in_dtype.name
        rtol, atol = CONFORMANCE_RTOL[dtype], CONFORMANCE_ATOL[dtype]
        exe = backend.plan(kind, SHAPES[kind], dtype=spec_dtype, layout=layout)
        for sign in _signs(kind):
            want = _reference(kind, x, sign)
            if layout == "soa" and kind != "rfft":
                got = from_soa(exe(to_soa(x), sign))
            elif layout == "soa":
                got = from_soa(exe(x, sign))
            else:
                got = exe(x, sign)
            # Reference magnitudes span ~1e-2..1e1, so allclose with atol
            # for the near-zero bins is the right comparison shape.
            np.testing.assert_allclose(
                got, want, rtol=rtol, atol=atol,
                err_msg=f"{name}/{kind}/{layout}/{dtype} sign={sign}",
            )

    @pytest.mark.parametrize("dtype", COMPLEX_DTYPES)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", known_backends())
    def test_output_dtype_matches_spec(self, name, kind, dtype):
        backend = _require(name)
        x = _input_for(kind, dtype)
        exe = backend.plan(kind, SHAPES[kind], dtype=x.dtype.name)
        got = exe(x, -1)
        assert got.dtype == np.dtype(dtype)
        assert got.shape == result_shape(PlanSpec(kind, SHAPES[kind], x.dtype.name))

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", known_backends())
    def test_out_buffer_is_bit_identical_to_no_out(self, name, kind):
        # The arena identity tests rely on this at the engine level; pin it
        # per backend: writing into out= never changes a single bit.
        backend = _require(name)
        x = _input_for(kind, "complex128")
        exe = backend.plan(kind, SHAPES[kind], dtype=x.dtype.name)
        for sign in _signs(kind):
            fresh = exe(x, sign)
            out = np.empty_like(fresh)
            res = exe(x, sign, out=out)
            assert res is out
            assert np.array_equal(fresh, out)

    @pytest.mark.parametrize("name", known_backends())
    def test_soa_out_and_scratch(self, name):
        backend = _require(name)
        x = _input_for("c2c_1d", "complex128")
        exe = backend.plan("c2c_1d", SHAPES["c2c_1d"], layout="soa")
        planes = to_soa(x)
        fresh = exe(planes, 1)
        out = np.empty_like(fresh)
        scratch = np.empty(SHAPES["c2c_1d"], dtype=np.complex128)
        res = exe(planes, 1, out=out, scratch=scratch)
        assert res is out
        assert np.array_equal(fresh, out)


class TestNativeBitIdentity:
    """``fft_backend='native'`` is exactly the pre-backend-plane kernels."""

    def test_c2c_kinds_bit_identical_to_batched_module(self):
        from repro.fft.batched import cft_1z, cft_2xy

        backend = get_backend("native")
        x1 = _input_for("c2c_1d", "complex128")
        x2 = _input_for("c2c_2d", "complex128")
        for sign in (1, -1):
            got1 = backend.plan("c2c_1d", x1.shape)(x1, sign)
            assert np.array_equal(got1, cft_1z(x1.copy(), sign))
            got2 = backend.plan("c2c_2d", x2.shape)(x2, sign)
            assert np.array_equal(got2, cft_2xy(x2.copy(), sign))


class TestInterfaceContracts:
    """Clean errors for malformed specs, calls, and unknown backends."""

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="known backends"):
            get_backend("fftw3_classic")

    def test_unavailable_backend_raises_with_reason(self):
        unavailable = [
            n for n in known_backends()
            if not get_backend(n, require_available=False).availability()[0]
        ]
        if not unavailable:
            pytest.skip("every registered backend is importable here")
        name = unavailable[0]
        with pytest.raises(BackendUnavailableError, match=name):
            get_backend(name)
        with pytest.raises(BackendUnavailableError):
            get_backend(name, require_available=False).plan("c2c_1d", (4, 8))

    @pytest.mark.parametrize(
        "kind,shape,dtype",
        [
            ("c2c_9d", (4, 8), "complex128"),      # unknown kind
            ("c2c_1d", (4, 8, 2), "complex128"),   # wrong rank
            ("c2c_1d", (0, 8), "complex128"),      # empty axis
            ("c2c_1d", (4, 8), "float64"),         # real dtype for c2c
            ("rfft", (4, 8), "complex128"),        # complex dtype for rfft
        ],
    )
    def test_malformed_specs_raise(self, kind, shape, dtype):
        with pytest.raises(ValueError):
            get_backend("numpy").plan(kind, shape, dtype=dtype)

    def test_unknown_layout_raises(self):
        with pytest.raises(ValueError, match="layout"):
            get_backend("numpy").plan("c2c_1d", (4, 8), layout="zigzag")

    def test_wrong_shape_call_raises(self):
        exe = get_backend("numpy").plan("c2c_1d", (4, 8))
        with pytest.raises(ValueError, match="planned for shape"):
            exe(np.zeros((4, 16), dtype=np.complex128), 1)

    def test_bad_sign_raises(self):
        exe = get_backend("numpy").plan("c2c_1d", (4, 8))
        with pytest.raises(ValueError, match="sign"):
            exe(np.zeros((4, 8), dtype=np.complex128), 0)
        rexe = get_backend("numpy").plan("rfft", (4, 8), dtype="float64")
        with pytest.raises(ValueError, match="forward"):
            rexe(np.zeros((4, 8)), 1)

    def test_registry_reports_skip_reason_for_missing_optionals(self):
        from repro.fft.backends import backend_info

        rows = {row["name"]: row for row in backend_info()}
        assert set(rows) == set(known_backends())
        for row in rows.values():
            assert row["note"], "every availability probe must carry a note"
        # The default must always be available — it is numpy itself.
        assert rows["numpy"]["available"]
