"""Correctness of the from-scratch FFTs against numpy.fft, plus properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import cft_1z, cft_2xy, fft, fft2, fwfft, get_plan, ifft, ifft2, invfft

RNG = np.random.default_rng(20170710)


def random_complex(*shape):
    return RNG.standard_normal(shape) + 1j * RNG.standard_normal(shape)


# Sizes covering every code path: tiny direct, pure radix-2, mixed 2/3/5,
# single 7 and 11 factors, primes (Bluestein), and paper-like grid sizes.
SIZES = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 20, 24, 25, 27,
         30, 32, 36, 45, 48, 49, 60, 64, 72, 97, 100, 101, 120, 128]


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", SIZES)
    def test_forward_matches_numpy(self, n):
        x = random_complex(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", SIZES)
    def test_inverse_matches_numpy(self, n):
        x = random_complex(n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", [8, 60, 97])
    def test_batched_matches_numpy(self, n):
        x = random_complex(5, 3, n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("axis", [0, 1, 2, -2])
    def test_axis_argument(self, axis):
        x = random_complex(6, 10, 12)
        np.testing.assert_allclose(
            fft(x, axis=axis), np.fft.fft(x, axis=axis), rtol=1e-9, atol=1e-9
        )

    def test_fft2_matches_numpy(self):
        x = random_complex(4, 12, 15)
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(ifft2(x), np.fft.ifft2(x), rtol=1e-9, atol=1e-9)

    def test_real_input_promoted(self):
        x = RNG.standard_normal(24)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), rtol=1e-9, atol=1e-9)

    def test_large_paper_grid(self):
        """A full 60-point dimension as in the ecut=80/alat=20 workload."""
        x = random_complex(100, 60)
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), rtol=1e-8, atol=1e-8)


class TestQEConvention:
    def test_invfft_is_unscaled_backward(self):
        x = random_complex(30)
        np.testing.assert_allclose(invfft(x), np.fft.ifft(x) * 30, rtol=1e-9, atol=1e-9)

    def test_fwfft_is_scaled_forward(self):
        x = random_complex(30)
        np.testing.assert_allclose(fwfft(x), np.fft.fft(x) / 30, rtol=1e-9, atol=1e-9)

    def test_qe_roundtrip_identity(self):
        """fwfft(invfft(x)) == x: the pipeline's forward+backward convention."""
        x = random_complex(45)
        np.testing.assert_allclose(fwfft(invfft(x)), x, rtol=1e-9, atol=1e-9)


class TestKernels:
    def test_cft_1z_shape_check(self):
        with pytest.raises(ValueError, match="nsticks, nz"):
            cft_1z(random_complex(4, 5, 6), +1)

    def test_cft_2xy_shape_check(self):
        with pytest.raises(ValueError, match="nplanes, nx, ny"):
            cft_2xy(random_complex(4, 5), +1)

    def test_bad_sign_rejected(self):
        with pytest.raises(ValueError, match="sign"):
            cft_1z(random_complex(3, 8), 2)

    def test_cft_1z_roundtrip(self):
        sticks = random_complex(50, 36)
        back = cft_1z(cft_1z(sticks, +1), -1)
        np.testing.assert_allclose(back, sticks, rtol=1e-9, atol=1e-9)

    def test_cft_1z_matches_numpy(self):
        sticks = random_complex(20, 60)
        np.testing.assert_allclose(
            cft_1z(sticks, +1), np.fft.ifft(sticks, axis=-1) * 60, rtol=1e-9, atol=1e-9
        )

    def test_cft_2xy_matches_numpy(self):
        planes = random_complex(6, 12, 10)
        got = cft_2xy(planes, +1)
        want = np.fft.ifft2(planes, axes=(-2, -1)) * (12 * 10)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_cft_2xy_roundtrip(self):
        planes = random_complex(4, 15, 18)
        np.testing.assert_allclose(
            cft_2xy(cft_2xy(planes, +1), -1), planes, rtol=1e-9, atol=1e-9
        )


class TestPlans:
    def test_plan_decomposition_small_radices(self):
        plan = get_plan(60, -1)
        assert not plan.uses_bluestein
        radices = [lvl.r for lvl in plan.levels]
        product = plan.base_n
        for r in radices:
            product *= r
        assert product == 60

    def test_prime_plan_uses_bluestein(self):
        assert get_plan(101, -1).uses_bluestein
        assert not get_plan(128, -1).uses_bluestein

    def test_plan_cache_returns_same_object(self):
        assert get_plan(48, -1) is get_plan(48, -1)
        assert get_plan(48, -1) is not get_plan(48, 1)

    def test_flops_accounting(self):
        assert get_plan(64, -1).flops == pytest.approx(5 * 64 * 6)

    def test_describe(self):
        assert "=" in get_plan(60, -1).describe()

    def test_invalid_plan_args(self):
        with pytest.raises(ValueError):
            get_plan(0, -1)
        with pytest.raises(ValueError):
            get_plan(8, 3)


@st.composite
def complex_arrays(draw, max_n=64):
    n = draw(st.integers(min_value=1, max_value=max_n))
    batch = draw(st.integers(min_value=1, max_value=4))
    re = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=batch * n,
            max_size=batch * n,
        )
    )
    im = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=batch * n,
            max_size=batch * n,
        )
    )
    return (np.array(re) + 1j * np.array(im)).reshape(batch, n)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(complex_arrays())
    def test_roundtrip(self, x):
        np.testing.assert_allclose(ifft(fft(x)), x, rtol=1e-8, atol=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(complex_arrays(max_n=32))
    def test_linearity(self, x):
        a, b = 2.5 - 1j, -0.75 + 3j
        y = x[::-1] if x.shape[0] > 1 else x * 1.5
        lhs = fft(a * x + b * y)
        rhs = a * fft(x) + b * fft(y)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(complex_arrays())
    def test_parseval(self, x):
        n = x.shape[-1]
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / n
        np.testing.assert_allclose(energy_freq, energy_time, rtol=1e-8, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=48))
    def test_impulse_response_is_flat(self, n):
        x = np.zeros(n, dtype=np.complex128)
        x[0] = 1.0
        np.testing.assert_allclose(fft(x), np.ones(n), rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=48))
    def test_shift_theorem(self, n):
        x = random_complex(n)
        shifted = np.roll(x, 1)
        k = np.arange(n)
        phase = np.exp(-2j * np.pi * k / n)
        np.testing.assert_allclose(fft(shifted), fft(x) * phase, rtol=1e-8, atol=1e-6)
