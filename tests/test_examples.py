"""Smoke tests for the example scripts.

Every example must at least compile; the fastest ones also run end to end
in a subprocess (offline, seconds).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {"quickstart.py", "scaling_study.py", "trace_analysis.py"} <= names
        assert len(EXAMPLES) >= 9

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self):
        result = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=pathlib.Path(__file__).parent.parent,
        )
        assert result.returncode == 0, result.stderr
        assert "max relative error" in result.stdout

    def test_desync_timeline_quick_runs(self):
        result = subprocess.run(
            [sys.executable, "examples/desync_timeline.py", "--quick", "--ranks", "2"],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=pathlib.Path(__file__).parent.parent,
        )
        assert result.returncode == 0, result.stderr
        assert "original" in result.stdout
