"""The ``fftxlib-repro sweep`` subcommand, end to end."""

import json

import pytest

from repro.cli import main

BASE = ["sweep", "--quick", "--ranks", "1,2", "--versions", "original",
        "--taskgroups", "2", "--stable"]


def run_sweep_cli(tmp_path, name, extra):
    out = tmp_path / name
    code = main(BASE + ["--out", str(out)] + extra)
    return code, json.loads(out.read_text())


class TestSweepCommand:
    def test_serial_run_writes_manifest(self, tmp_path, capsys):
        code, manifest = run_sweep_cli(tmp_path, "serial.json", ["--jobs", "1"])
        assert code == 0
        assert manifest["sweep"]["mode"] == "serial"
        assert set(manifest["points"]) == {
            "ranks=1,version=original,taskgroups=2",
            "ranks=2,version=original,taskgroups=2",
        }
        out = capsys.readouterr().out
        assert "2 point(s)" in out
        assert "sweep manifest written" in out

    def test_jobs_do_not_change_points(self, tmp_path, capsys):
        _code, serial = run_sweep_cli(tmp_path, "serial.json", ["--jobs", "1"])
        _code, pooled = run_sweep_cli(tmp_path, "pooled.json", ["--jobs", "2"])
        assert pooled["sweep"]["mode"] == "process"
        assert serial["points"] == pooled["points"]

    def test_resume_skips_recorded_points(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(BASE + ["--out", str(out)]) == 0
        manifest = json.loads(out.read_text())
        removed = "ranks=2,version=original,taskgroups=2"
        del manifest["points"][removed]
        manifest["sweep"]["n_points"] = 1
        out.write_text(json.dumps(manifest))
        capsys.readouterr()

        assert main(BASE + ["--out", str(out), "--resume"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any("reused" in l and removed not in l for l in lines)
        assert json.loads(out.read_text())["sweep"]["n_points"] == 2

    def test_resume_without_out_is_an_input_error(self, capsys):
        assert main(["sweep", "--resume"]) == 2
        assert "--resume needs --out" in capsys.readouterr().err

    def test_unknown_version_is_an_input_error(self, capsys):
        assert main(["sweep", "--versions", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_axis_literal_is_an_input_error(self, capsys):
        assert main(["sweep", "--ranks", "2,x"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_pop_adds_factors(self, tmp_path, capsys):
        code, manifest = run_sweep_cli(
            tmp_path, "pop.json", ["--jobs", "1", "--pop"]
        )
        assert code == 0
        for entry in manifest["points"].values():
            assert "pop" in entry["summary"]

    def test_perf_validate_accepts_sweep_manifest(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(BASE + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["perf", "validate", str(out)]) == 0
        assert "valid sweep manifest" in capsys.readouterr().out

    def test_perf_validate_rejects_corrupt_sweep_manifest(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(BASE + ["--out", str(out)]) == 0
        manifest = json.loads(out.read_text())
        del manifest["sweep"]["n_points"]
        out.write_text(json.dumps(manifest))
        capsys.readouterr()
        assert main(["perf", "validate", str(out)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestExperimentJobsFlag:
    @pytest.mark.parametrize("extra", [[], ["--jobs", "2"]])
    def test_fig7_runs_with_jobs(self, extra, capsys):
        assert main(["fig7", "--quick"] + extra) == 0
        assert "de-synchronization" in capsys.readouterr().out
