"""The sweep executor: determinism across worker counts, resume, streaming.

The load-bearing guarantee tested here is the engine's determinism
contract: a sweep at ``jobs=4`` on a process pool is byte-identical,
point for point, to the same sweep executed serially — with and without
an injected fault scenario.
"""

import pytest

from repro.core.config import RunConfig
from repro.faults import FaultScenario, Straggler
from repro.sweep import (
    GridSpec,
    SweepError,
    SweepTask,
    canonical_json,
    digest_summary,
    load_sweep_manifest,
    run_sweep,
)

WORKLOAD = dict(ecutwfc=15.0, alat=6.0, nbnd=8)


def small_tasks(faults=None, reducer="summary"):
    """A 4-point ranks x version grid on the tiny certification workload."""
    grid = GridSpec(
        axes={"ranks": (1, 2), "version": ("original", "ompss_perfft")},
        base=dict(WORKLOAD, taskgroups=2, telemetry=True, faults=faults),
    )
    return grid, [
        SweepTask(key=p.key, config=p.config, reducer=reducer) for p in grid.points()
    ]


def point_bytes(result):
    """Key -> canonical JSON bytes of each summary (the identity the CLI checks)."""
    return {r.key: canonical_json(r.summary) for r in result.records}


class TestDeterminism:
    def test_process_pool_matches_serial(self):
        _grid, tasks = small_tasks()
        serial = run_sweep(tasks, jobs=1)
        pooled = run_sweep(tasks, jobs=4, mode="process")
        assert point_bytes(serial) == point_bytes(pooled)
        assert [r.digest for r in serial.records] == [r.digest for r in pooled.records]

    def test_thread_pool_matches_serial(self):
        _grid, tasks = small_tasks()
        serial = run_sweep(tasks, jobs=1)
        threaded = run_sweep(tasks, jobs=4, mode="thread")
        assert point_bytes(serial) == point_bytes(threaded)

    def test_process_pool_matches_serial_under_faults(self):
        scenario = FaultScenario(
            name="mixed",
            seed=11,
            os_noise=0.3,
            stragglers=[Straggler(rank=0, slowdown=2.0)],
        )
        _grid, tasks = small_tasks(faults=scenario)
        serial = run_sweep(tasks, jobs=1)
        pooled = run_sweep(tasks, jobs=4, mode="process")
        assert point_bytes(serial) == point_bytes(pooled)

    def test_records_in_task_order_regardless_of_completion(self):
        _grid, tasks = small_tasks()
        pooled = run_sweep(tasks, jobs=4, mode="process")
        assert [r.key for r in pooled.records] == [t.key for t in tasks]

    def test_digest_is_over_canonical_json(self):
        _grid, tasks = small_tasks()
        result = run_sweep(tasks[:1])
        record = result.records[0]
        assert record.digest == digest_summary(record.summary)
        assert record.digest.startswith("sha256:")


class TestStreamingAndResume:
    def test_manifest_streams_after_every_point(self, tmp_path):
        out = tmp_path / "sweep.json"
        seen = []

        def spy(record):
            seen.append(load_sweep_manifest(out)["sweep"]["n_points"])

        grid, tasks = small_tasks()
        run_sweep(tasks, out=out, grid=grid, on_point=spy)
        assert seen == [1, 2, 3, 4]
        manifest = load_sweep_manifest(out)
        assert manifest["sweep"]["n_tasks"] == 4
        assert manifest["sweep"]["n_points"] == 4
        assert manifest["sweep"]["grid"]["n_points"] == 4

    def test_resume_recomputes_exactly_the_missing_points(self, tmp_path):
        out = tmp_path / "sweep.json"
        grid, tasks = small_tasks()
        full = run_sweep(tasks, out=out, grid=grid, stable=True)

        manifest = load_sweep_manifest(out)
        dropped = [tasks[1].key, tasks[2].key]
        for key in dropped:
            del manifest["points"][key]
        manifest["sweep"]["n_points"] = 2

        resumed = run_sweep(tasks, jobs=2, resume=manifest, out=out, grid=grid, stable=True)
        assert sorted(resumed.computed_keys) == sorted(dropped)
        assert sorted(resumed.reused_keys) == sorted(
            k for k in (t.key for t in tasks) if k not in dropped
        )
        assert point_bytes(resumed) == point_bytes(full)
        assert load_sweep_manifest(out)["sweep"]["n_points"] == 4

    def test_resumed_records_marked_reused(self):
        _grid, tasks = small_tasks()
        full = run_sweep(tasks)
        manifest_points = {
            r.key: r.to_manifest_entry() for r in full.records
        }
        resumed = run_sweep(tasks, resume={"points": manifest_points})
        assert all(r.reused for r in resumed.records)
        assert point_bytes(resumed) == point_bytes(full)

    def test_stable_manifest_pins_clock_fields(self, tmp_path):
        out = tmp_path / "sweep.json"
        grid, tasks = small_tasks()
        run_sweep(tasks[:1], out=out, grid=grid, stable=True)
        manifest = load_sweep_manifest(out)
        assert manifest["created"] == "(stable)"
        assert manifest["sweep"]["wall_time_s"] is None


class TestReducersAndErrors:
    def test_dotted_path_reducer(self):
        _grid, tasks = small_tasks(reducer="repro.experiments.common:reduce_timing")
        result = run_sweep(tasks[:2], jobs=2, mode="process")
        for record in result.records:
            assert set(record.summary) == {"phase_time_s", "average_ipc", "failed"}

    def test_unknown_reducer_names_the_point(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        task = SweepTask(key="ranks=1", config=config, reducer="nonsense")
        with pytest.raises(SweepError, match="unknown reducer"):
            run_sweep([task])

    def test_unresolvable_dotted_reducer(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        task = SweepTask(key="ranks=1", config=config, reducer="no.such.module:fn")
        with pytest.raises(SweepError, match="cannot resolve"):
            run_sweep([task])

    def test_duplicate_keys_rejected(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        tasks = [SweepTask(key="same", config=config)] * 2
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(tasks)

    def test_bad_jobs_and_mode_rejected(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        task = SweepTask(key="ranks=1", config=config)
        with pytest.raises(ValueError, match="jobs"):
            run_sweep([task], jobs=0)
        with pytest.raises(ValueError, match="mode"):
            run_sweep([task], mode="carrier-pigeon")

    def test_worker_exception_wrapped_with_point_key(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        # canonical_json is callable but has the wrong arity: the worker's
        # TypeError must surface as a SweepError naming the point.
        task = SweepTask(
            key="ranks=1,boom=yes", config=config,
            reducer="repro.sweep.engine:canonical_json",
        )
        with pytest.raises(SweepError, match="ranks=1,boom=yes"):
            run_sweep([task])

    def test_worker_exception_wrapped_in_pool_mode(self):
        config = RunConfig(ranks=1, taskgroups=2, **WORKLOAD)
        tasks = [
            SweepTask(key="ok", config=config),
            SweepTask(
                key="boom", config=config,
                reducer="repro.sweep.engine:canonical_json",
            ),
        ]
        with pytest.raises(SweepError, match="boom"):
            run_sweep(tasks, jobs=2, mode="process")

    def test_ideal_replay_adds_pop_factors(self):
        config = RunConfig(ranks=2, taskgroups=2, telemetry=True, **WORKLOAD)
        task = SweepTask(key="ranks=2", config=config, ideal_replay=True)
        result = run_sweep([task])
        summary = result.records[0].summary
        assert "pop" in summary
        assert summary["pop"]["ideal_time_s"] > 0


class TestSweepResult:
    def test_getitem_and_summaries(self):
        _grid, tasks = small_tasks()
        result = run_sweep(tasks[:2])
        assert result[tasks[0].key].key == tasks[0].key
        assert list(result.summaries()) == [t.key for t in tasks[:2]]
        with pytest.raises(KeyError):
            result["no-such-point"]
