"""Sweep-manifest schema: build, write/load round trip, validation rules."""

import json

import pytest

from repro.sweep import (
    SWEEP_MANIFEST_KIND,
    SWEEP_MANIFEST_SCHEMA_VERSION,
    PointRecord,
    SweepManifestError,
    build_sweep_manifest,
    load_sweep_manifest,
    validate_sweep_manifest,
    write_sweep_manifest,
)


def record(key="ranks=1", failed=False):
    summary = {"phase_time_s": 0.01, "failed": failed}
    return PointRecord(
        key=key,
        summary=summary,
        digest="sha256:" + "0" * 64,
        phase_time_s=0.01,
        failed=failed,
    )


def valid_manifest(**kwargs):
    defaults = dict(jobs=2, mode="process", wall_time_s=1.5, created="(test)")
    defaults.update(kwargs)
    return build_sweep_manifest([record("ranks=1"), record("ranks=2")], **defaults)


class TestBuild:
    def test_sections_and_counters(self):
        manifest = valid_manifest(n_tasks=3)
        assert manifest["kind"] == SWEEP_MANIFEST_KIND
        assert manifest["schema_version"] == SWEEP_MANIFEST_SCHEMA_VERSION
        assert manifest["sweep"]["n_tasks"] == 3
        assert manifest["sweep"]["n_points"] == 2
        assert manifest["sweep"]["n_failed"] == 0
        assert set(manifest["points"]) == {"ranks=1", "ranks=2"}

    def test_failed_points_counted(self):
        manifest = build_sweep_manifest(
            [record("a"), record("b", failed=True)], created="(test)"
        )
        assert manifest["sweep"]["n_failed"] == 1
        assert manifest["points"]["b"]["failed"] is True

    def test_created_defaults_to_timestamp(self):
        manifest = build_sweep_manifest([record()])
        assert manifest["created"] != "(test)"
        assert len(manifest["created"]) > 10

    def test_grid_dict_embedded_verbatim(self):
        manifest = valid_manifest(grid={"axes": {"ranks": [1, 2]}})
        assert manifest["sweep"]["grid"] == {"axes": {"ranks": [1, 2]}}


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = write_sweep_manifest(tmp_path / "sweep.json", valid_manifest())
        assert load_sweep_manifest(path) == valid_manifest()

    def test_suffix_appended(self, tmp_path):
        path = write_sweep_manifest(tmp_path / "sweep", valid_manifest())
        assert path.suffix == ".json"

    def test_write_rejects_invalid(self, tmp_path):
        manifest = valid_manifest()
        del manifest["sweep"]["n_points"]
        with pytest.raises(SweepManifestError, match="n_points"):
            write_sweep_manifest(tmp_path / "bad.json", manifest)

    def test_load_rejects_invalid(self, tmp_path):
        manifest = valid_manifest()
        manifest["kind"] = "something.else"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(SweepManifestError, match="kind"):
            load_sweep_manifest(path)


class TestValidate:
    def test_valid_manifest_has_no_errors(self):
        assert validate_sweep_manifest(valid_manifest()) == []

    def test_non_dict_rejected(self):
        assert validate_sweep_manifest([1, 2]) != []

    @pytest.mark.parametrize(
        "dotted", ["kind", "created", "sweep", "points"]
    )
    def test_missing_required_top_level(self, dotted):
        manifest = valid_manifest()
        del manifest[dotted]
        assert any(dotted in e for e in validate_sweep_manifest(manifest))

    def test_newer_schema_version_rejected(self):
        manifest = valid_manifest()
        manifest["schema_version"] = SWEEP_MANIFEST_SCHEMA_VERSION + 1
        assert any("newer" in e for e in validate_sweep_manifest(manifest))

    def test_jobs_floor(self):
        manifest = valid_manifest()
        manifest["sweep"]["jobs"] = 0
        assert any("jobs" in e for e in validate_sweep_manifest(manifest))

    def test_point_count_must_match_map(self):
        manifest = valid_manifest()
        manifest["sweep"]["n_points"] = 5
        errors = validate_sweep_manifest(manifest)
        assert any("does not match" in e for e in errors)

    def test_points_cannot_exceed_tasks(self):
        manifest = valid_manifest(n_tasks=1)
        assert any("exceeds" in e for e in validate_sweep_manifest(manifest))

    def test_point_entry_fields_checked(self):
        manifest = valid_manifest()
        del manifest["points"]["ranks=1"]["digest"]
        manifest["points"]["ranks=2"]["phase_time_s"] = "fast"
        errors = validate_sweep_manifest(manifest)
        assert any("ranks=1" in e and "digest" in e for e in errors)
        assert any("ranks=2" in e and "phase_time_s" in e for e in errors)

    def test_point_entry_must_be_object(self):
        manifest = valid_manifest()
        manifest["points"]["ranks=1"] = "nope"
        assert any("must be an object" in e for e in validate_sweep_manifest(manifest))
