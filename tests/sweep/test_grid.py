"""GridSpec expansion: ordering, keys, validation, serialization."""

import pytest

from repro.faults import FaultScenario
from repro.sweep import GridSpec, point_key

WORKLOAD = dict(ecutwfc=15.0, alat=6.0, nbnd=8)


class TestPointKey:
    def test_axis_order_is_key_order(self):
        assert point_key({"ranks": 8, "version": "original"}) == "ranks=8,version=original"

    def test_scalar_formatting(self):
        assert point_key({"a": 1.5, "b": True, "c": None}) == "a=1.5,b=True,c=None"


class TestGridSpec:
    def test_expansion_order_is_nested_loops(self):
        grid = GridSpec(
            axes={"ranks": (1, 2), "version": ("original", "ompss_perfft")},
            base=dict(WORKLOAD, taskgroups=2),
        )
        assert [p.key for p in grid.points()] == [
            "ranks=1,version=original",
            "ranks=1,version=ompss_perfft",
            "ranks=2,version=original",
            "ranks=2,version=ompss_perfft",
        ]

    def test_points_carry_full_configs(self):
        grid = GridSpec(axes={"ranks": (2,)}, base=dict(WORKLOAD, taskgroups=2))
        (point,) = grid.points()
        assert point.config.ranks == 2
        assert point.config.ecutwfc == WORKLOAD["ecutwfc"]
        assert point.assignment == {"ranks": 2}

    def test_n_points(self):
        grid = GridSpec(axes={"a": (1, 2, 3), "b": (1, 2)})
        assert grid.n_points == 6

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            GridSpec(axes={})

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            GridSpec(axes={"ranks": ()})

    def test_axis_shadowing_base_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            GridSpec(axes={"ranks": (1,)}, base={"ranks": 2})

    def test_invalid_config_surfaces_at_expansion(self):
        grid = GridSpec(axes={"ranks": (1,)}, base={"version": "bogus"})
        with pytest.raises(ValueError):
            grid.points()

    def test_to_dict_is_json_safe(self):
        grid = GridSpec(
            axes={"ranks": (1, 2)},
            base=dict(WORKLOAD, taskgroups=2),
        )
        doc = grid.to_dict()
        assert doc["axes"] == {"ranks": [1, 2]}
        assert doc["n_points"] == 2
        assert doc["base"]["taskgroups"] == 2

    def test_to_dict_serializes_fault_scenarios(self):
        scenario = FaultScenario(name="noise", seed=7, os_noise=0.25)
        grid = GridSpec(axes={"ranks": (1,)}, base={"faults": scenario})
        doc = grid.to_dict()
        assert doc["base"]["faults"]["name"] == "noise"
        assert doc["base"]["faults"]["os_noise"] == 0.25
