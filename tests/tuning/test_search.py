"""The successive-halving search: validity, determinism, the win guarantee.

The load-bearing property is the incumbent's bye into the final rung —
the recorded winner can never score worse than the config's own knobs, at
any executor mode or parallelism, which is what makes the tuned-vs-default
experiment's win rate a construction guarantee rather than a hope.
"""

import dataclasses

import pytest

from repro.core.config import RunConfig
from repro.core.driver import run_fft_phase
from repro.tuning.digest import KNOB_FIELDS, knobs_of, workload_digest
from repro.tuning.search import _rung_nbnd, candidate_knobs, search
from repro.tuning.wisdom import WisdomDB

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


class TestCandidateKnobs:
    def test_all_candidates_are_valid_configs(self):
        config = RunConfig(ranks=2, taskgroups=2, **SMALL)
        for knobs in candidate_knobs(config):
            assert tuple(knobs) == KNOB_FIELDS
            dataclasses.replace(config, **knobs)  # must not raise

    def test_incumbent_always_present(self):
        config = RunConfig(ranks=2, taskgroups=2, **SMALL)
        assert knobs_of(config) in candidate_knobs(config)

    def test_deterministic_order(self):
        config = RunConfig(ranks=2, taskgroups=2, version="ompss_combined", **SMALL)
        assert candidate_knobs(config) == candidate_knobs(config)

    def test_scheduler_and_grains_only_where_they_act(self):
        plain = candidate_knobs(RunConfig(ranks=2, taskgroups=2, **SMALL))
        assert {k["scheduler"] for k in plain} == {"fifo"}
        assert {k["grainsize_xy"] for k in plain} == {10}
        tasked = candidate_knobs(
            RunConfig(ranks=2, taskgroups=2, version="ompss_combined", **SMALL)
        )
        assert {k["scheduler"] for k in tasked} == {"fifo", "lifo", "locality"}
        assert len({k["grainsize_xy"] for k in tasked}) == 3

    def test_rung_nbnd_keeps_every_candidate_valid(self):
        config = RunConfig(ranks=2, taskgroups=2, nbnd=64, ecutwfc=12.0, alat=5.0)
        candidates = candidate_knobs(config)
        cheap = _rung_nbnd(config, candidates)
        assert 0 < cheap <= config.nbnd
        for knobs in candidates:
            dataclasses.replace(config, **knobs, nbnd=cheap)  # must not raise


class TestSearch:
    @pytest.fixture(scope="class")
    def config(self):
        return RunConfig(ranks=2, taskgroups=2, **SMALL)

    @pytest.fixture(scope="class")
    def result(self, config):
        return search(config, top_k=4, survivors=2)

    def test_winner_never_loses_to_the_incumbent(self, config, result):
        incumbent_s = result.provenance["incumbent_s"]
        assert incumbent_s is not None
        assert result.score <= incumbent_s
        # And the incumbent's final-rung time is the real default run time.
        assert incumbent_s == run_fft_phase(config).phase_time

    def test_winner_score_is_the_real_run_time(self, config, result):
        tuned = dataclasses.replace(config, **result.knobs)
        assert run_fft_phase(tuned).phase_time == result.score

    def test_deterministic(self, config, result):
        again = search(config, top_k=4, survivors=2)
        assert again == result

    def test_executor_modes_agree(self, config, result):
        threaded = search(config, jobs=2, mode="thread", top_k=4, survivors=2)
        assert threaded == result

    def test_digest_and_provenance(self, config, result):
        assert result.digest == workload_digest(config)
        assert result.source == "search"
        prov = result.provenance
        assert prov["candidates"] >= prov["shortlist"] >= 1
        assert prov["evaluated"] >= 2
        assert 0 < prov["rung0_nbnd"] <= config.nbnd

    def test_records_into_the_db(self, config, tmp_path):
        db = WisdomDB(tmp_path / "wisdom.jsonl")
        entry = search(config, db=db, top_k=4, survivors=2)
        assert db.lookup(entry.digest) == entry
        assert WisdomDB(tmp_path / "wisdom.jsonl").lookup(entry.digest) == entry

    def test_bad_budgets_rejected(self, config):
        with pytest.raises(ValueError, match="top_k"):
            search(config, top_k=0)
        with pytest.raises(ValueError, match="survivors"):
            search(config, survivors=0)
