"""Workload-digest identity: stable across executors, blind to knobs.

The wisdom DB is only as durable as its key.  These tests pin the digest's
two contracts: byte-stability (the same workload hashes identically in the
parent process, worker threads and spawned worker processes — the three
sweep executor modes) and knob-blindness (moving any tunable leaves the
digest alone, while changing the workload, machine profile or per-link
capacity moves it).
"""

import concurrent.futures
import dataclasses
import multiprocessing

from repro.core.config import RunConfig
from repro.machine.knl import KnlParameters
from repro.tuning.digest import (
    DIGEST_SCHEMA,
    KNOB_FIELDS,
    digest_doc,
    knobs_of,
    workload_digest,
)

REF = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=4, taskgroups=2)


def _digest_worker(payload):
    """Module-level so process pools can pickle it."""
    config = RunConfig(**payload)
    return workload_digest(config, KnlParameters())


class TestDigestStability:
    def test_stable_across_serial_thread_process(self):
        expected = _digest_worker(REF)
        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            threaded = list(pool.map(_digest_worker, [REF] * 4))
        ctx = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=ctx
        ) as pool:
            processed = list(pool.map(_digest_worker, [REF] * 4))
        assert set(threaded) == {expected}
        assert set(processed) == {expected}

    def test_format_and_schema(self):
        config = RunConfig(**REF)
        digest = workload_digest(config)
        assert digest.startswith("sha256:")
        assert len(digest) == len("sha256:") + 64
        assert digest_doc(config)["schema"] == DIGEST_SCHEMA

    def test_default_knl_matches_explicit_default(self):
        config = RunConfig(**REF)
        assert workload_digest(config) == workload_digest(config, KnlParameters())


class TestDigestSensitivity:
    def test_knobs_do_not_move_the_digest(self):
        base = RunConfig(**REF)
        expected = workload_digest(base)
        moved = {
            "taskgroups": 4,
            "scheduler": "lifo",
            "grainsize_xy": 20,
            "grainsize_z": 400,
            "decomposition": "pencil",
            "redistribution": "packed",
        }
        for field, value in moved.items():
            variant = dataclasses.replace(base, **{field: value})
            assert workload_digest(variant) == expected, field

    def test_workload_fields_move_the_digest(self):
        base = RunConfig(**REF)
        expected = workload_digest(base)
        for change in (
            {"ecutwfc": 15.0},
            {"nbnd": 16},
            {"ranks": 2},
            {"version": "ompss_perfft", "taskgroups": 2},
            {"n_nodes": 2},
            {"data_mode": True},
            {"link_capacity": 1e9},
        ):
            variant = dataclasses.replace(base, **change)
            assert workload_digest(variant) != expected, change

    def test_machine_profile_moves_the_digest(self):
        config = RunConfig(**REF)
        slow = dataclasses.replace(KnlParameters(), frequency_hz=1.0e9)
        assert workload_digest(config, slow) != workload_digest(config)

    def test_knobs_of_covers_exactly_the_knob_fields(self):
        config = RunConfig(**REF)
        knobs = knobs_of(config)
        assert tuple(knobs) == KNOB_FIELDS
        assert knobs["taskgroups"] == 2
        assert knobs["decomposition"] == "slab"
