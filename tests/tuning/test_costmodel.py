"""Cost-model conformance and monotonicity.

The model's job is *ranking*, but its byte formulas must match what the
data plane actually moves — the conformance test prices the forward slab
scatter analytically and against the real :class:`ExchangePlan` block
descriptors.  The monotonicity tests pin the qualitative physics the
search leans on: more nodes cost fabric time, a tighter per-link capacity
never helps, oversubscription dilates compute.
"""

import pytest

from repro.core.config import RunConfig
from repro.core.driver import build_geometry
from repro.machine.knl import KnlParameters
from repro.tuning.costmodel import (
    WorkloadModel,
    estimated_scatter_bytes,
    planned_scatter_bytes,
    predict,
    score_candidates,
)
from repro.tuning.digest import knobs_of

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


@pytest.fixture(scope="module")
def workload():
    return WorkloadModel.from_config(RunConfig(ranks=4, taskgroups=2, **SMALL))


class TestScatterConformance:
    @pytest.mark.parametrize("scatter,groups", [(4, 1), (2, 2), (8, 1)])
    def test_estimate_matches_planned_blocks(self, workload, scatter, groups):
        """The analytic scatter volume equals the summed send-block bytes
        of the real forward exchange plans, for any R x T split."""
        _cell, _desc, layout = build_geometry(
            SMALL["alat"], SMALL["ecutwfc"], 4.0, scatter, groups
        )
        assert estimated_scatter_bytes(workload, scatter) == pytest.approx(
            planned_scatter_bytes(layout)
        )

    def test_volume_is_rank_invariant(self, workload):
        assert estimated_scatter_bytes(workload, 2) == estimated_scatter_bytes(
            workload, 8
        )


class TestPredict:
    def test_components_positive_and_sum(self, workload):
        out = predict(workload, knobs_of(RunConfig(ranks=4, taskgroups=2, **SMALL)))
        assert out["compute_s"] > 0
        assert out["comm_s"] > 0
        assert out["overhead_s"] == 0.0  # original: no task runtime
        assert out["total_s"] == pytest.approx(
            out["compute_s"] + out["comm_s"] + out["overhead_s"]
        )

    def test_task_versions_pay_runtime_overhead(self):
        config = RunConfig(ranks=4, taskgroups=2, version="ompss_perfft", **SMALL)
        w = WorkloadModel.from_config(config)
        assert predict(w, knobs_of(config))["overhead_s"] > 0

    def test_more_nodes_cost_fabric_time(self):
        base = RunConfig(ranks=4, taskgroups=2, **SMALL)
        knobs = knobs_of(base)
        one = predict(WorkloadModel.from_config(base), knobs)
        four = predict(
            WorkloadModel.from_config(
                RunConfig(ranks=4, taskgroups=2, n_nodes=4, **SMALL)
            ),
            knobs,
        )
        assert four["comm_s"] > one["comm_s"]

    def test_tighter_link_capacity_never_helps(self):
        config = RunConfig(ranks=4, taskgroups=2, n_nodes=2, **SMALL)
        w = WorkloadModel.from_config(config)
        knobs = knobs_of(config)
        free = predict(w, knobs, link_capacity=None)["comm_s"]
        wide = predict(w, knobs, link_capacity=1e12)["comm_s"]
        tight = predict(w, knobs, link_capacity=1e4)["comm_s"]
        assert wide >= free or wide == pytest.approx(free)
        assert tight > 10 * free

    def test_link_capacity_ignored_on_one_node(self):
        config = RunConfig(ranks=4, taskgroups=2, **SMALL)
        w = WorkloadModel.from_config(config)
        knobs = knobs_of(config)
        assert predict(w, knobs, link_capacity=1e3) == predict(w, knobs)

    def test_oversubscription_dilates_compute(self):
        """Past one stream per core the issue-rate share kicks in."""
        slim = KnlParameters()
        starved = KnlParameters(n_cores=2)
        config = RunConfig(ranks=8, taskgroups=2, **SMALL)
        w = WorkloadModel.from_config(config)
        knobs = knobs_of(config)
        assert (
            predict(w, knobs, knl=starved)["compute_s"]
            > predict(w, knobs, knl=slim)["compute_s"]
        )


class TestScoreCandidates:
    def test_sorted_and_deterministic(self, workload):
        config = RunConfig(ranks=4, taskgroups=2, **SMALL)
        candidates = [
            knobs_of(config),
            {**knobs_of(config), "taskgroups": 4},
            {**knobs_of(config), "decomposition": "pencil"},
        ]
        a = score_candidates(workload, candidates)
        b = score_candidates(workload, list(reversed(candidates)))
        assert a == b  # input order never matters
        scores = [s for s, _k in a]
        assert scores == sorted(scores)
