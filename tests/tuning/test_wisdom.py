"""Durability of the wisdom database.

The store's promises: appends from concurrent threads and processes never
corrupt each other (whole-line O_APPEND atomicity), a crashed writer's
truncated tail is skipped on load and repaired by the next append, older
record layouts migrate in memory, and the memoized consult path sees a
fresh file generation as soon as it changes.
"""

import concurrent.futures
import dataclasses
import json
import multiprocessing

from repro.tuning.wisdom import (
    SCHEMA_VERSION,
    WisdomDB,
    WisdomEntry,
    consult,
    migrate_record,
)

DIGEST = "sha256:" + "ab" * 32


def entry(score, digest=DIGEST, **kwargs):
    return WisdomEntry(
        digest=digest,
        knobs={"taskgroups": 4, "decomposition": "slab"},
        score=score,
        **kwargs,
    )


class TestRoundTrip:
    def test_record_persists_and_reloads(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        db = WisdomDB(path)
        db.record(entry(0.5, predicted_s=0.4, provenance={"evaluated": 7}))
        reloaded = WisdomDB(path)
        got = reloaded.lookup(DIGEST)
        assert got is not None
        assert got.score == 0.5
        assert got.predicted_s == 0.4
        assert got.provenance == {"evaluated": 7}
        assert reloaded.skipped_lines == 0

    def test_lowest_score_wins_later_ties_replace(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        db = WisdomDB(path)
        db.record(entry(0.5, source="search"))
        db.record(entry(0.9, source="import"))   # worse: ignored
        db.record(entry(0.5, source="manual"))   # tie, later: replaces
        for view in (db, WisdomDB(path)):
            best = view.lookup(DIGEST)
            assert best.score == 0.5
            assert best.source == "manual"
            assert len(view) == 1

    def test_in_memory_db_never_touches_disk(self):
        db = WisdomDB(None)
        db.record(entry(0.1))
        assert db.lookup(DIGEST).score == 0.1
        assert db.path is None

    def test_export_import_merge(self, tmp_path):
        a = WisdomDB(tmp_path / "a.jsonl")
        a.record(entry(0.5))
        a.record(entry(0.2, digest="sha256:" + "cd" * 32))
        exported = tmp_path / "export.jsonl"
        assert a.export(exported) == 2

        b = WisdomDB(tmp_path / "b.jsonl")
        b.record(entry(0.3))  # better than a's 0.5 for DIGEST
        merged = b.import_from(exported)
        assert merged == 1  # only the digest b did not already beat
        assert b.lookup(DIGEST).score == 0.3
        assert b.lookup("sha256:" + "cd" * 32).source == "import"


class TestMigration:
    def test_v0_record_migrates(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        v0 = {
            "digest": DIGEST,
            "best": {"taskgroups": 8, "scheduler": "lifo", "score": 0.25},
        }
        path.write_text(json.dumps(v0) + "\n")
        db = WisdomDB(path)
        got = db.lookup(DIGEST)
        assert got is not None
        assert got.score == 0.25
        assert got.knobs == {"taskgroups": 8, "scheduler": "lifo"}
        assert got.provenance == {"migrated_from": 0}
        assert db.skipped_lines == 0

    def test_newer_schema_is_skipped_not_guessed(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        future = {"schema": SCHEMA_VERSION + 1, "digest": DIGEST, "score": 0.1}
        path.write_text(json.dumps(future) + "\n")
        db = WisdomDB(path)
        assert db.lookup(DIGEST) is None
        assert db.skipped_lines == 1

    def test_migrate_record_rejects_garbage(self):
        assert migrate_record({"schema": None}) is None
        assert migrate_record({"best": {"score": 1.0}}) is None  # no digest
        assert migrate_record({"digest": DIGEST, "best": {}}) is None  # no score


class TestCorruptionTolerance:
    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        db = WisdomDB(path)
        db.record(entry(0.5))
        with path.open("a") as fh:
            fh.write("{not json\n")
            fh.write("[1, 2, 3]\n")  # parses, but not a record object
        reloaded = WisdomDB(path)
        assert reloaded.lookup(DIGEST).score == 0.5
        assert reloaded.skipped_lines == 2

    def test_truncated_tail_skipped_then_repaired(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        db = WisdomDB(path)
        db.record(entry(0.5))
        db.record(entry(0.4))
        # A writer died mid-record: chop the file mid-line.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])

        damaged = WisdomDB(path)
        assert damaged.lookup(DIGEST).score == 0.5  # the intact line
        assert damaged.skipped_lines == 1

        # The next append must start a fresh line, not extend the stump.
        damaged.record(entry(0.3))
        healed = WisdomDB(path)
        assert healed.lookup(DIGEST).score == 0.3
        assert healed.skipped_lines == 1  # the stump stays isolated


def _append_worker(args):
    """Module-level for process pools: append ``n`` entries to one file."""
    path, worker, n = args
    db = WisdomDB(path)
    for i in range(n):
        db.record(
            WisdomEntry(
                digest=f"sha256:{worker:02d}{i:04d}" + "0" * 58,
                knobs={"taskgroups": 2},
                score=0.1 + i,
            )
        )
    return worker


class TestConcurrentAppends:
    N_WORKERS = 4
    PER_WORKER = 25

    def _assert_intact(self, path):
        lines = [ln for ln in path.read_bytes().split(b"\n") if ln.strip()]
        assert len(lines) == self.N_WORKERS * self.PER_WORKER
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == SCHEMA_VERSION
        db = WisdomDB(path)
        assert db.skipped_lines == 0
        assert len(db) == self.N_WORKERS * self.PER_WORKER

    def test_threads_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        jobs = [(path, w, self.PER_WORKER) for w in range(self.N_WORKERS)]
        with concurrent.futures.ThreadPoolExecutor(self.N_WORKERS) as pool:
            list(pool.map(_append_worker, jobs))
        self._assert_intact(path)

    def test_processes_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        jobs = [(str(path), w, self.PER_WORKER) for w in range(self.N_WORKERS)]
        ctx = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            self.N_WORKERS, mp_context=ctx
        ) as pool:
            list(pool.map(_append_worker, jobs))
        self._assert_intact(path)


class TestMemoizedConsult:
    def test_consult_matches_direct_lookup(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        WisdomDB(path).record(entry(0.5))
        assert consult(path, DIGEST) == WisdomDB(path).lookup(DIGEST)
        assert consult(path, "sha256:" + "00" * 32) is None

    def test_missing_file_is_a_miss_not_an_error(self, tmp_path):
        assert consult(tmp_path / "absent.jsonl", DIGEST) is None

    def test_consult_sees_new_generations(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        db = WisdomDB(path)
        db.record(entry(0.5))
        assert consult(path, DIGEST).score == 0.5
        db.record(entry(0.2))  # appending changes (mtime, size)
        assert consult(path, DIGEST).score == 0.2

    def test_consult_reuses_the_parsed_db(self, tmp_path, monkeypatch):
        import repro.tuning.wisdom as wisdom_mod

        path = tmp_path / "wisdom.jsonl"
        WisdomDB(path).record(entry(0.5))
        consult(path, DIGEST)  # prime the cache

        loads = []
        original = wisdom_mod.WisdomDB._load

        def counting_load(self):
            loads.append(1)
            return original(self)

        monkeypatch.setattr(wisdom_mod.WisdomDB, "_load", counting_load)
        for _ in range(5):
            assert consult(path, DIGEST).score == 0.5
        assert loads == []  # warm path: zero file parses
