"""Driver integration: consult semantics, byte identity, warm overhead.

The acceptance contracts of the tuning plane: a ``tuning="consult"`` run
resolves its knobs *before* any geometry or machine exists, so its
simulated timeline is byte-identical to a hand-written config with the
same knobs; the warm consult path costs well under 1% of the reference
run; and the per-link capacity knob is strictly opt-in — the default-off
path is pinned bit-identical to the pre-knob timings.
"""

import dataclasses
import time

import pytest

from repro.core import RunConfig, run_fft_phase
from repro.telemetry.manifest import build_manifest, validate_manifest
from repro.tuning import (
    WisdomDB,
    WisdomEntry,
    apply_knobs,
    consult,
    resolve_tuning,
    workload_digest,
)
from repro.tuning.search import search

SMALL = dict(ecutwfc=12.0, alat=5.0, nbnd=8)


@pytest.fixture(scope="module")
def warm_db(tmp_path_factory):
    """A wisdom file already holding the 2x2 small workload's winner."""
    path = tmp_path_factory.mktemp("wisdom") / "wisdom.jsonl"
    config = RunConfig(ranks=2, taskgroups=2, **SMALL)
    entry = search(config, db=WisdomDB(path), top_k=4, survivors=2)
    return path, config, entry


class TestConsultIdentity:
    def test_consult_run_matches_handwritten_config(self, warm_db):
        """Byte identity: same knobs, same simulated timeline."""
        path, config, entry = warm_db
        consulted = run_fft_phase(
            dataclasses.replace(config, tuning="consult", wisdom_path=str(path))
        )
        handwritten = run_fft_phase(dataclasses.replace(config, **entry.knobs))
        assert consulted.phase_time == handwritten.phase_time
        assert consulted.tuning["hit"] is True
        assert consulted.tuning["applied"] is True
        assert consulted.tuning["knobs"] == entry.knobs

    def test_consult_miss_leaves_the_run_untouched(self, tmp_path):
        config = RunConfig(
            ranks=2, taskgroups=2,
            tuning="consult", wisdom_path=str(tmp_path / "empty.jsonl"),
            **SMALL,
        )
        plain = run_fft_phase(RunConfig(ranks=2, taskgroups=2, **SMALL))
        result = run_fft_phase(config)
        assert result.phase_time == plain.phase_time
        assert result.tuning["hit"] is False
        assert result.tuning["applied"] is False

    def test_tuning_off_records_nothing(self):
        result = run_fft_phase(RunConfig(ranks=2, taskgroups=2, **SMALL))
        assert result.tuning is None
        assert "tuning" not in build_manifest(result)

    def test_manifest_tuning_section_validates(self, warm_db):
        path, config, _entry = warm_db
        result = run_fft_phase(
            dataclasses.replace(config, tuning="consult", wisdom_path=str(path))
        )
        manifest = build_manifest(result)
        assert manifest["tuning"]["mode"] == "consult"
        assert manifest["tuning"]["digest"].startswith("sha256:")
        assert manifest["tuning"]["measured_s"] == result.phase_time
        assert validate_manifest(manifest) == []

    def test_search_mode_runs_cold_then_applies(self, tmp_path):
        path = tmp_path / "wisdom.jsonl"
        config = RunConfig(
            ranks=2, taskgroups=2,
            tuning="search", wisdom_path=str(path),
            **SMALL,
        )
        result = run_fft_phase(config)
        assert result.tuning["hit"] is False
        assert result.tuning["applied"] is True
        assert result.tuning["source"] == "search"
        # The search left wisdom behind: the next consult is a warm hit.
        assert consult(path, result.tuning["digest"]) is not None


class TestResolveTuning:
    def test_stale_entry_never_breaks_the_run(self, tmp_path):
        """A knob vector invalid for this workload is dropped, not fatal."""
        config = RunConfig(
            ranks=2, taskgroups=2,
            tuning="consult", wisdom_path=str(tmp_path / "w.jsonl"),
            **SMALL,
        )
        db = WisdomDB(tmp_path / "w.jsonl")
        db.record(
            WisdomEntry(
                digest=workload_digest(config),
                knobs={"taskgroups": 7},  # does not divide the band batch
                score=0.001,
            )
        )
        resolved, info = resolve_tuning(config)
        assert info["hit"] is True
        assert info["applied"] is False
        assert resolved == config

    def test_apply_knobs_drops_backend_knobs_before_giving_up(self):
        config = RunConfig(ranks=2, taskgroups=2, **SMALL)
        knobs = {"taskgroups": 4, "fft_backend": "no-such-backend"}
        resolved = apply_knobs(config, knobs)
        assert resolved is not None
        assert resolved.taskgroups == 4
        assert resolved.fft_backend == config.fft_backend

    def test_warm_consult_under_one_percent_of_reference_run(self, warm_db):
        """Admission-path budget: a memoized consult on a warm DB costs
        <1% of the 8x8 reference run it would front."""
        path, config, _entry = warm_db
        digest = workload_digest(config)
        consult(path, digest)  # prime the (path, mtime, size) generation

        reference = RunConfig(ranks=8, taskgroups=8, ecutwfc=30.0,
                              alat=10.0, nbnd=32)
        t0 = time.perf_counter()
        run_fft_phase(reference)
        run_s = time.perf_counter() - t0

        n = 50
        t0 = time.perf_counter()
        for _ in range(n):
            assert consult(path, digest) is not None
        consult_s = (time.perf_counter() - t0) / n
        assert consult_s < 0.01 * run_s


class TestLinkCapacityPin:
    BASE = dict(ecutwfc=12.0, alat=5.0, nbnd=8, ranks=4, taskgroups=2, n_nodes=2)
    #: Simulated phase time of the 2-node reference before the per-link
    #: knob existed — the default-off path must stay bit-identical.
    PINNED_DEFAULT_S = 0.00017500621336826718

    def test_default_off_is_bit_identical(self):
        result = run_fft_phase(RunConfig(**self.BASE))
        assert result.phase_time == self.PINNED_DEFAULT_S

    def test_tiny_capacity_strictly_slows_the_run(self):
        capped = run_fft_phase(RunConfig(link_capacity=1e5, **self.BASE))
        assert capped.phase_time > self.PINNED_DEFAULT_S

    def test_single_node_runs_never_see_the_fabric(self):
        """On one node there is no inter-node link to cap."""
        base = {**self.BASE, "n_nodes": 1}
        free = run_fft_phase(RunConfig(**base))
        capped = run_fft_phase(RunConfig(link_capacity=1e5, **base))
        assert capped.phase_time == free.phase_time

    def test_validation(self):
        with pytest.raises(ValueError, match="link_capacity"):
            RunConfig(link_capacity=0.0, **self.BASE)
        with pytest.raises(ValueError, match="tuning"):
            RunConfig(tuning="always", ranks=2, taskgroups=2)
