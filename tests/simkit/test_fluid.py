"""Unit and property tests for the fluid (processor-sharing) resource."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import EqualShareAllocator, FluidResource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


def make_cpu(sim, capacity=10.0, per_task_cap=None):
    return FluidResource(sim, EqualShareAllocator(capacity, per_task_cap), name="cpu")


class TestEqualShareAllocator:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EqualShareAllocator(0)
        with pytest.raises(ValueError):
            EqualShareAllocator(1.0, per_task_cap=-1)

    def test_single_task_gets_full_capacity(self, sim):
        cpu = make_cpu(sim, capacity=4.0)

        def body():
            task = cpu.submit(8.0)
            yield task.done
            return sim.now

        assert sim.run(sim.process(body())) == pytest.approx(2.0)

    def test_two_tasks_share_equally(self, sim):
        cpu = make_cpu(sim, capacity=4.0)
        finish = {}

        def worker(name, work):
            task = cpu.submit(work)
            yield task.done
            finish[name] = sim.now

        sim.process(worker("a", 8.0))
        sim.process(worker("b", 8.0))
        sim.run()
        # Shared at 2.0 each: both finish at t=4.
        assert finish == {"a": pytest.approx(4.0), "b": pytest.approx(4.0)}

    def test_per_task_cap_limits_lonely_task(self, sim):
        cpu = make_cpu(sim, capacity=10.0, per_task_cap=2.0)

        def body():
            task = cpu.submit(4.0)
            yield task.done
            return sim.now

        assert sim.run(sim.process(body())) == pytest.approx(2.0)


class TestDynamicRebalancing:
    def test_late_arrival_slows_running_task(self, sim):
        cpu = make_cpu(sim, capacity=2.0)
        finish = {}

        def first():
            task = cpu.submit(4.0)
            yield task.done
            finish["first"] = sim.now

        def second():
            yield sim.timeout(1.0)
            task = cpu.submit(1.0)
            yield task.done
            finish["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # first: 2 units done at t=1 (rate 2), then rate 1 until second leaves
        # at t=2 (1 unit left), then rate 2 again → done at t=2.5.
        # second: 1 unit at rate 1 → done at t=2.
        assert finish["second"] == pytest.approx(2.0)
        assert finish["first"] == pytest.approx(2.5)

    def test_departure_speeds_up_remaining(self, sim):
        cpu = make_cpu(sim, capacity=2.0)
        finish = {}

        def worker(name, work):
            task = cpu.submit(work)
            yield task.done
            finish[name] = sim.now

        sim.process(worker("short", 1.0))
        sim.process(worker("long", 3.0))
        sim.run()
        # shared rate 1 each; short done at t=1 having left long with 2 units,
        # which then run at rate 2 → done at t=2.
        assert finish["short"] == pytest.approx(1.0)
        assert finish["long"] == pytest.approx(2.0)

    def test_zero_work_completes_instantly(self, sim):
        cpu = make_cpu(sim)

        def body():
            task = cpu.submit(0.0)
            yield task.done
            return sim.now

        assert sim.run(sim.process(body())) == 0.0

    def test_negative_work_rejected(self, sim):
        cpu = make_cpu(sim)
        with pytest.raises(ValueError):
            cpu.submit(-1.0)

    def test_cancel_active_task(self, sim):
        cpu = make_cpu(sim, capacity=2.0)
        finish = {}

        def victim():
            task = cpu.submit(100.0)
            yield sim.timeout(1.0)
            cpu.cancel(task)
            finish["victim_cancelled_at"] = sim.now
            yield sim.timeout(0)

        def other():
            task = cpu.submit(4.0)
            yield task.done
            finish["other"] = sim.now

        sim.process(victim())
        sim.process(other())
        sim.run()
        # other had rate 1 until t=1 (3 left), then rate 2 → done at 2.5.
        assert finish["other"] == pytest.approx(2.5)

    def test_active_time_accounting(self, sim):
        cpu = make_cpu(sim, capacity=1.0)
        tasks = {}

        def body():
            t = cpu.submit(3.0)
            tasks["t"] = t
            yield t.done

        sim.run(sim.process(body()))
        assert tasks["t"].active_time == pytest.approx(3.0)
        assert tasks["t"].finish_time == pytest.approx(3.0)
        assert tasks["t"].progress == pytest.approx(1.0)

    def test_observer_called_on_changes(self, sim):
        calls = []
        cpu = FluidResource(
            sim, EqualShareAllocator(1.0), observer=lambda res, now: calls.append(now)
        )

        def body():
            t = cpu.submit(1.0)
            yield t.done

        sim.run(sim.process(body()))
        assert calls  # at least submit + completion rebalances
        assert calls[0] == 0.0
        assert calls[-1] == pytest.approx(1.0)


class TestFluidProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=8),
        capacity=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_makespan_equals_total_work_over_capacity_when_saturated(self, works, capacity):
        """With no per-task cap and all tasks submitted at t=0 the resource is
        work-conserving: makespan == sum(work) / capacity."""
        sim = Simulator()
        cpu = FluidResource(sim, EqualShareAllocator(capacity))

        def worker(w):
            task = cpu.submit(w)
            yield task.done

        for w in works:
            sim.process(worker(w))
        sim.run()
        assert sim.now == pytest.approx(sum(works) / capacity, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=2, max_size=8),
    )
    def test_shorter_tasks_never_finish_after_longer_ones(self, works):
        sim = Simulator()
        cpu = FluidResource(sim, EqualShareAllocator(7.0))
        finishes = []

        def worker(w):
            task = cpu.submit(w)
            yield task.done
            finishes.append((w, sim.now))

        for w in works:
            sim.process(worker(w))
        sim.run()
        by_work = sorted(finishes)
        times = [t for _, t in by_work]
        assert all(t1 <= t2 + 1e-9 for t1, t2 in zip(times, times[1:]))

    @settings(max_examples=30, deadline=None)
    @given(
        staggered=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.01, max_value=10.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_work_conservation_with_staggered_arrivals(self, staggered):
        """Total completed work equals total submitted work regardless of
        arrival pattern (progress integration is exact)."""
        sim = Simulator()
        cpu = FluidResource(sim, EqualShareAllocator(3.0))
        done_work = []

        def worker(delay, w):
            yield sim.timeout(delay)
            task = cpu.submit(w)
            yield task.done
            done_work.append(task.work - task.remaining)

        for delay, w in staggered:
            sim.process(worker(delay, w))
        sim.run()
        assert math.isclose(sum(done_work), sum(w for _, w in staggered), rel_tol=1e-9)
