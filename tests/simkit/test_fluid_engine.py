"""Engine-level tests of the vectorized fluid resource.

Covers the observability counters (rebalances, coalescing, timer-churn
skips), the struct-of-arrays bookkeeping across grow/compact cycles, the
allocator attach/detach notification hooks, and the lazy zero-rate
``active_time`` accounting — the machinery behind the contention engine's
hot path rather than the fluid semantics themselves (those live in
``test_fluid.py``).
"""

import numpy as np
import pytest

from repro.simkit import EqualShareAllocator, FluidResource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class RecordingBatchAllocator:
    """Minimal batch-protocol allocator that logs every engine hook."""

    static_width = 2

    def __init__(self, capacity=4.0):
        self.capacity = capacity
        self.attached = []
        self.detached = []
        self.batch_calls = 0

    def prepare(self, task):
        return (float(task.meta.get("tag", 0)), 1.0)

    def notify_attach(self, static):
        self.attached.append(float(static[0]))

    def notify_detach(self, static):
        self.detached.append(float(static[0]))

    def allocate_batch(self, statics):
        self.batch_calls += 1
        n = len(statics)
        return np.full(n, self.capacity / n)


class TestCounters:
    def test_same_timestamp_submits_coalesce_into_one_rebalance(self, sim):
        cpu = FluidResource(sim, EqualShareAllocator(4.0), name="cpu")
        for _ in range(5):
            cpu.submit(100.0)
        sim.run(until=1.0)
        stats = cpu.stats()
        # Five submits at t=0: one flush, four coalesced updates.
        assert stats["n_rebalances"] == 1
        assert stats["n_coalesced"] == 4

    def test_unchanged_deadline_skips_timer_rearm(self, sim):
        class IndependentRates:
            def allocate(self, tasks):
                return [1.0] * len(tasks)

        cpu = FluidResource(sim, IndependentRates(), name="cpu")

        def body():
            cpu.submit(10.0)  # finishes at t=10 at rate 1
            yield sim.timeout(5.0)
            # Joining work does not change the earliest deadline: the
            # rebalance must reuse the armed timer instead of re-arming.
            cpu.submit(100.0)

        sim.process(body())
        sim.run()
        assert cpu.stats()["n_timer_skips"] == 1

    def test_stats_include_allocator_cache_info(self, sim):
        class WithCacheInfo(RecordingBatchAllocator):
            def cache_info(self):
                return {"alloc_cache_hits": 3}

        cpu = FluidResource(sim, WithCacheInfo(), name="cpu")
        assert cpu.stats()["alloc_cache_hits"] == 3

    def test_counters_are_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            cpu = FluidResource(sim, EqualShareAllocator(3.0), name="cpu")

            def body():
                for work in (4.0, 2.0, 6.0, 1.0):
                    task = cpu.submit(work)
                    yield sim.timeout(0.5)
                yield task.done

            sim.run(sim.process(body()))
            return cpu.stats()

        assert run_once() == run_once()


class TestNotificationHooks:
    def test_attach_and_detach_bracket_every_task(self, sim):
        alloc = RecordingBatchAllocator()
        cpu = FluidResource(sim, alloc, name="cpu")

        def body():
            a = cpu.submit(4.0, meta={"tag": 1})
            b = cpu.submit(8.0, meta={"tag": 2})
            yield a.done
            yield b.done

        sim.run(sim.process(body()))
        assert alloc.attached == [1.0, 2.0]
        # a (equal shares of 4.0: rate 2 each) finishes before b.
        assert alloc.detached == [1.0, 2.0]

    def test_cancel_also_notifies_detach(self, sim):
        alloc = RecordingBatchAllocator()
        cpu = FluidResource(sim, alloc, name="cpu")
        task = cpu.submit(100.0, meta={"tag": 7})
        cpu.submit(100.0, meta={"tag": 8})
        sim.run(until=0.5)
        cpu.cancel(task)
        assert alloc.detached == [7.0]

    def test_barrier_finish_detaches_everyone(self, sim):
        alloc = RecordingBatchAllocator(capacity=4.0)
        cpu = FluidResource(sim, alloc, name="cpu")
        for tag in (1, 2):
            cpu.submit(6.0, meta={"tag": tag})  # equal rates: both end at t=3
        sim.run()
        assert sorted(alloc.detached) == [1.0, 2.0]
        assert cpu.stats()["n_rebalances"] >= 1
        assert not cpu.active_tasks


class TestStructOfArrays:
    def test_state_survives_growth_and_compaction(self, sim):
        cpu = FluidResource(sim, EqualShareAllocator(64.0), name="cpu")
        finish_order = []

        def worker(k):
            task = cpu.submit(float(k))
            yield task.done
            finish_order.append(k)

        # Far beyond the initial array capacity, with staggered works so the
        # compaction path runs once per completion.
        for k in range(1, 130):
            sim.process(worker(k))
        sim.run()
        assert finish_order == sorted(finish_order)
        assert not cpu.active_tasks

    def test_detached_task_state_reads_back(self, sim):
        cpu = FluidResource(sim, EqualShareAllocator(2.0), name="cpu")

        def body():
            task = cpu.submit(4.0)
            yield task.done
            return task

        task = sim.run(sim.process(body()))
        assert task.remaining == 0.0
        assert task.finish_time == pytest.approx(2.0)
        assert task.active_time == pytest.approx(2.0)


class TestZeroRateAccounting:
    def test_active_time_excludes_starved_interval(self, sim):
        class OneAtATime:
            """Grants the whole capacity to the first task, zero to others."""

            def allocate(self, tasks):
                return [2.0] + [0.0] * (len(tasks) - 1)

        cpu = FluidResource(sim, OneAtATime(), name="cpu")
        order = []

        def worker(name, work):
            task = cpu.submit(work)
            yield task.done
            order.append((name, sim.now, task.active_time))

        sim.process(worker("a", 4.0))
        sim.process(worker("b", 2.0))
        sim.run()
        # b starves for the 2s a holds the resource, then runs 1s.
        assert order[0] == ("a", pytest.approx(2.0), pytest.approx(2.0))
        name, end, active = order[1]
        assert name == "b"
        assert end == pytest.approx(3.0)
        assert active == pytest.approx(1.0)


class TestCompletionTimer:
    def test_exact_deadline_completion(self, sim):
        cpu = FluidResource(sim, EqualShareAllocator(1.0), name="cpu")

        def body():
            task = cpu.submit(1.5)
            yield task.done
            return sim.now

        assert sim.run(sim.process(body())) == pytest.approx(1.5)

    def test_stale_timer_after_cancel_is_harmless(self, sim):
        cpu = FluidResource(sim, EqualShareAllocator(1.0), name="cpu")
        task = cpu.submit(2.0)
        sim.run(until=1.0)
        cpu.cancel(task)
        # The armed t=2 timer fires on an empty resource: must be a no-op.
        sim.run(until=5.0)
        assert not cpu.active_tasks
        assert task.done._exception is not None
