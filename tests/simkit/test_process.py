"""Unit tests for simkit processes and condition events."""

import pytest

from repro.simkit import AllOf, AnyOf, DeadlockError, Interrupt, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestProcessBasics:
    def test_process_return_value(self, sim):
        def body():
            yield sim.timeout(1)
            return "done"

        assert sim.run(sim.process(body())) == "done"

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_processes_interleave_by_time(self, sim):
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((name, sim.now))

        sim.process(worker("slow", 3))
        sim.process(worker("fast", 1))
        sim.run()
        assert log == [("fast", 1), ("slow", 3)]

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(2)
            return 7

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run(sim.process(parent())) == 8

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        assert sim.run(sim.process(parent())) == "child died"

    def test_unwaited_process_failure_raises_from_run(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("unobserved")

        sim.process(child())
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_yield_non_event_fails_process(self, sim):
        def body():
            yield 42  # type: ignore[misc]

        proc = sim.process(body())
        with pytest.raises(RuntimeError, match="non-event"):
            sim.run(proc)
        assert proc.triggered

    def test_immediate_return_process(self, sim):
        def body():
            return "instant"
            yield  # pragma: no cover

        proc = sim.process(body())
        assert sim.run(proc) == "instant"

    def test_active_process_visible_during_execution(self, sim):
        seen = []

        def body():
            seen.append(sim.active_process)
            yield sim.timeout(0)

        proc = sim.process(body())
        sim.run()
        assert seen == [proc]
        assert sim.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)

        def attacker(target):
            yield sim.timeout(5)
            target.interrupt("reason")

        v = sim.process(victim())
        sim.process(attacker(v))
        assert sim.run(v) == ("interrupted", "reason", 5)

    def test_interrupt_dead_process_raises(self, sim):
        def body():
            yield sim.timeout(1)

        proc = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_victim_can_continue_after_interrupt(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(1)
            return sim.now

        def attacker(target):
            yield sim.timeout(2)
            target.interrupt()

        v = sim.process(victim())
        sim.process(attacker(v))
        assert sim.run(v) == 3


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def body():
            t1 = sim.timeout(1, value="a")
            t2 = sim.timeout(3, value="b")
            result = yield AllOf(sim, [t1, t2])
            return (sim.now, result.values())

        assert sim.run(sim.process(body())) == (3, ["a", "b"])

    def test_any_of_fires_on_first(self, sim):
        def body():
            t1 = sim.timeout(1, value="first")
            t2 = sim.timeout(3, value="second")
            result = yield AnyOf(sim, [t1, t2])
            return (sim.now, result.values())

        assert sim.run(sim.process(body())) == (1, ["first"])

    def test_all_of_empty_fires_immediately(self, sim):
        def body():
            result = yield AllOf(sim, [])
            return len(result)

        assert sim.run(sim.process(body())) == 0

    def test_all_of_propagates_failure(self, sim):
        def failing():
            yield sim.timeout(1)
            raise RuntimeError("member failed")

        def body():
            yield AllOf(sim, [sim.process(failing()), sim.timeout(5)])

        with pytest.raises(RuntimeError, match="member failed"):
            sim.run(sim.process(body()))

    def test_condition_value_mapping(self, sim):
        def body():
            t1 = sim.timeout(1, value="x")
            cond = yield AllOf(sim, [t1])
            assert t1 in cond
            return cond[t1]

        assert sim.run(sim.process(body())) == "x"

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            AllOf(sim, [sim.timeout(1), other.timeout(1)])


class TestDeadlockDetection:
    def test_blocked_process_raises_deadlock(self, sim):
        ev = sim.event("never")

        def body():
            yield ev

        sim.process(body())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_deadlock_message_names_processes(self, sim):
        ev = sim.event("never")

        def body():
            yield ev

        sim.process(body(), name="stuck-rank")
        with pytest.raises(DeadlockError, match="stuck-rank"):
            sim.run()

    def test_run_until_event_never_fired_is_deadlock(self, sim):
        ev = sim.event("never")
        with pytest.raises(DeadlockError):
            sim.run(ev)

    def test_run_until_time_with_blocked_process_is_fine(self, sim):
        ev = sim.event("never")

        def body():
            yield ev

        sim.process(body())
        sim.run(until=10.0)
        assert sim.now == 10.0
