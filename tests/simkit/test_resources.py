"""Unit tests for counting resources and mutexes."""

import pytest

from repro.simkit import Mutex, Resource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_within_capacity_is_immediate(self, sim):
        res = Resource(sim, capacity=2)

        def body():
            r1 = res.request()
            yield r1
            r2 = res.request()
            yield r2
            return sim.now

        assert sim.run(sim.process(body())) == 0

    def test_fifo_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            req = res.request()
            yield req
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(worker("a", 2))
        sim.process(worker("b", 1))
        sim.process(worker("c", 1))
        sim.run()
        assert order == [("a", 0), ("b", 2), ("c", 3)]

    def test_release_unowned_raises(self, sim):
        res = Resource(sim, capacity=1)

        def body():
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        with pytest.raises(ValueError):
            sim.run(sim.process(body()))

    def test_counts(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5)
            res.release(req)

        def waiter():
            yield sim.timeout(1)
            req = res.request()
            yield req
            res.release(req)

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=2)
        assert res.count == 1
        assert res.queue_length == 1
        sim.run()
        assert res.count == 0

    def test_context_manager_releases(self, sim):
        res = Resource(sim, capacity=1)
        times = []

        def worker():
            with res.request() as req:
                yield req
                yield sim.timeout(1)
            times.append(sim.now)

        def second():
            req = res.request()
            yield req
            times.append(sim.now)
            res.release(req)

        sim.process(worker())
        sim.process(second())
        sim.run()
        assert times == [1, 1]

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10)
            res.release(req)

        cancelled = []

        def impatient():
            yield sim.timeout(1)
            req = res.request()
            req.cancel()
            cancelled.append(res.queue_length)
            yield sim.timeout(0)

        sim.process(holder())
        sim.process(impatient())
        sim.run()
        assert cancelled == [0]


class TestMutex:
    def test_mutex_is_exclusive(self, sim):
        m = Mutex(sim)
        assert m.capacity == 1

    def test_mutual_exclusion_in_time(self, sim):
        m = Mutex(sim)
        spans = []

        def worker(name):
            req = m.request()
            yield req
            start = sim.now
            yield sim.timeout(3)
            spans.append((name, start, sim.now))
            m.release(req)

        sim.process(worker("x"))
        sim.process(worker("y"))
        sim.run()
        (n1, s1, e1), (n2, s2, e2) = spans
        assert e1 <= s2  # no overlap
