"""Tests for the bounded FIFO channel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import Simulator
from repro.simkit.stores import Store


@pytest.fixture()
def sim():
    return Simulator()


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        times = {}

        def consumer():
            item = yield store.get()
            times["got"] = (item, sim.now)

        def producer():
            yield sim.timeout(3.0)
            yield store.put(42)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times["got"] == (42, 3.0)

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("p1", sim.now))
            yield store.put(2)  # blocks until the consumer drains
            log.append(("p2", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            yield store.get()
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log == [("p1", 0.0), ("p2", 5.0)]

    def test_fifo_order_among_getters(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        def producer():
            yield sim.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.process(producer())
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_level_tracking(self, sim):
        store = Store(sim, capacity=3)

        def body():
            yield store.put(1)
            yield store.put(2)
            assert store.level == 2
            yield store.get()
            assert store.level == 1

        sim.run(sim.process(body()))

    @settings(max_examples=30, deadline=None)
    @given(
        items=st.lists(st.integers(), min_size=1, max_size=20),
        capacity=st.integers(min_value=1, max_value=5),
    )
    def test_everything_arrives_in_order(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                received.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items
