"""Edge-case tests for the simulator facade."""

import pytest

from repro.simkit import (
    DeadlockError,
    EventCancelled,
    SimulationError,
    Simulator,
)


class TestSimulatorEdges:
    def test_peek_empty_is_inf(self):
        sim = Simulator()
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.timeout(2.0)
        assert sim.peek() == 2.0

    def test_step_on_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            Simulator().step()

    def test_run_until_past_time_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            sim.run(until=5.0)

    def test_run_until_time_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_until_already_processed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        assert sim.run(ev) == "x"

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        done = []

        def body():
            yield sim.timeout(1.0)
            done.append(sim.now)

        sim.process(body())
        sim.run()
        assert done == [101.0]

    def test_independent_simulators_do_not_interact(self):
        a, b = Simulator(), Simulator()

        def body(sim, log):
            yield sim.timeout(1.0)
            log.append(sim.now)

        log_a, log_b = [], []
        a.process(body(a, log_a))
        b.process(body(b, log_b))
        a.run()
        assert log_a == [1.0] and log_b == []
        b.run()
        assert log_b == [1.0]

    def test_run_until_time_then_continue(self):
        sim = Simulator()
        log = []

        def body():
            for _ in range(3):
                yield sim.timeout(1.0)
                log.append(sim.now)

        sim.process(body())
        sim.run(until=1.5)
        assert log == [1.0]
        sim.run()
        assert log == [1.0, 2.0, 3.0]


class TestSameTimestampOrdering:
    def test_same_timestamp_events_dispatch_in_schedule_order(self):
        sim = Simulator()
        order = []
        events = [sim.event(name=f"e{i}") for i in range(4)]

        def waiter(i):
            yield events[i]
            order.append(i)

        for i in range(4):
            sim.process(waiter(i), name=f"w{i}")
        for ev in events:  # all trigger at the same simulated instant
            ev.succeed()
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_cancellation_preserves_order_of_surviving_events(self):
        """Cancelling one of several same-timestamp events must not reorder
        the survivors nor change the instant any of them observes."""
        sim = Simulator()
        order = []
        events = [sim.event(name=f"e{i}") for i in range(4)]

        def waiter(i):
            try:
                yield events[i]
                order.append(("ok", i, sim.now))
            except EventCancelled:
                order.append(("cancelled", i, sim.now))

        for i in range(4):
            sim.process(waiter(i), name=f"w{i}")

        def driver():
            yield sim.timeout(1.0)
            events[0].succeed()
            events[1].succeed()
            events[2].cancel()
            events[3].succeed()

        sim.process(driver(), name="driver")
        sim.run()
        assert order == [
            ("ok", 0, 1.0),
            ("ok", 1, 1.0),
            ("cancelled", 2, 1.0),
            ("ok", 3, 1.0),
        ]

    def test_cancel_already_triggered_event_is_noop(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        assert ev.cancel() is False
        assert sim.run(ev) == "v"


class TestDeadlockReporting:
    def test_deadlock_message_lists_hung_processes_and_targets(self):
        sim = Simulator()

        def hang(ev):
            yield ev

        sim.process(hang(sim.event(name="never-b")), name="proc-b")
        sim.process(hang(sim.event(name="never-a")), name="proc-a")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        message = str(err.value)
        assert "blocked processes" in message
        assert "no pending events" in message
        assert "'proc-a'" in message and "'proc-b'" in message
        assert "never-a" in message and "never-b" in message
        # One line per process, sorted by process name for a stable report.
        assert message.index("proc-a") < message.index("proc-b")

    def test_deadlock_on_unfired_until_event_names_it(self):
        sim = Simulator()
        stop = sim.event(name="finish-line")

        def hang():
            yield sim.event(name="never")

        sim.process(hang(), name="stuck")
        with pytest.raises(DeadlockError, match="never fired"):
            sim.run(stop)

    def test_completed_simulation_does_not_deadlock(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)

        sim.process(body())
        sim.run()  # all processes finish: no DeadlockError
        assert sim.now == 1.0


class TestDispatchCounter:
    def test_counter_starts_at_zero_and_grows(self):
        sim = Simulator()
        assert sim.n_dispatched == 0

        def body():
            for _ in range(5):
                yield sim.timeout(1.0)

        sim.process(body())
        sim.run()
        assert sim.n_dispatched > 0

    def test_step_increments_by_exactly_one(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(2.0)
        before = sim.n_dispatched
        sim.step()
        assert sim.n_dispatched == before + 1

    def test_identical_workloads_dispatch_identical_counts(self):
        def build():
            sim = Simulator()

            def body():
                for _ in range(3):
                    yield sim.timeout(1.0)

            sim.process(body())
            sim.process(body())
            return sim

        a, b = build(), build()
        a.run()
        b.run()
        assert a.n_dispatched == b.n_dispatched

    def test_segmented_run_counts_like_a_single_run(self):
        def build():
            sim = Simulator()

            def body():
                for _ in range(4):
                    yield sim.timeout(1.0)

            sim.process(body())
            return sim

        whole, halves = build(), build()
        whole.run()
        halves.run(until=2.5)
        halves.run()
        assert halves.n_dispatched == whole.n_dispatched

    def test_counter_preserved_when_deadlock_raises(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)
            yield sim.event(name="never")

        sim.process(body(), name="stuck")
        with pytest.raises(DeadlockError):
            sim.run()
        assert sim.n_dispatched > 0
