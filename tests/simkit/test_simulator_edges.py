"""Edge-case tests for the simulator facade."""

import pytest

from repro.simkit import SimulationError, Simulator


class TestSimulatorEdges:
    def test_peek_empty_is_inf(self):
        sim = Simulator()
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.timeout(2.0)
        assert sim.peek() == 2.0

    def test_step_on_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            Simulator().step()

    def test_run_until_past_time_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            sim.run(until=5.0)

    def test_run_until_time_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_until_already_processed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        assert sim.run(ev) == "x"

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        done = []

        def body():
            yield sim.timeout(1.0)
            done.append(sim.now)

        sim.process(body())
        sim.run()
        assert done == [101.0]

    def test_independent_simulators_do_not_interact(self):
        a, b = Simulator(), Simulator()

        def body(sim, log):
            yield sim.timeout(1.0)
            log.append(sim.now)

        log_a, log_b = [], []
        a.process(body(a, log_a))
        b.process(body(b, log_b))
        a.run()
        assert log_a == [1.0] and log_b == []
        b.run()
        assert log_b == [1.0]

    def test_run_until_time_then_continue(self):
        sim = Simulator()
        log = []

        def body():
            for _ in range(3):
                yield sim.timeout(1.0)
                log.append(sim.now)

        sim.process(body())
        sim.run(until=1.5)
        assert log == [1.0]
        sim.run()
        assert log == [1.0, 2.0, 3.0]
