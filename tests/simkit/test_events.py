"""Unit tests for simkit event primitives."""

import pytest

from repro.simkit import Event, EventCancelled, Simulator, Timeout


@pytest.fixture()
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, sim):
        ev = sim.event("e")
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value
        with pytest.raises(RuntimeError):
            _ = ev.ok

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.processed
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_then_value_raises_original(self, sim):
        ev = sim.event()
        err = ValueError("boom")
        ev.fail(err)
        ev.defuse()
        sim.run()
        assert not ev.ok
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_undefused_failure_propagates_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestCancellation:
    def test_cancel_pending_event(self, sim):
        ev = sim.event("victim")
        assert ev.cancel()
        sim.run()
        assert ev.triggered
        assert isinstance(ev.exception, EventCancelled)

    def test_cancel_triggered_event_is_noop(self, sim):
        ev = sim.event()
        ev.succeed(1)
        assert not ev.cancel()
        sim.run()
        assert ev.value == 1

    def test_waiting_process_sees_cancellation(self, sim):
        ev = sim.event()
        caught = []

        def waiter():
            try:
                yield ev
            except EventCancelled:
                caught.append(True)

        sim.process(waiter())
        ev.cancel()
        sim.run()
        assert caught == [True]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        def body():
            yield sim.timeout(2.5)
            return sim.now

        proc = sim.process(body())
        assert sim.run(proc) == 2.5
        assert sim.now == 2.5

    def test_timeout_value(self, sim):
        def body():
            got = yield sim.timeout(1.0, value="payload")
            return got

        proc = sim.process(body())
        assert sim.run(proc) == "payload"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Timeout(sim, -1.0)

    def test_zero_delay_fires_at_current_time(self, sim):
        def body():
            yield sim.timeout(0.0)
            return sim.now

        proc = sim.process(body())
        assert sim.run(proc) == 0.0

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        a = sim.timeout(1.0)
        b = sim.timeout(1.0)
        a.add_callback(lambda e: order.append("a"))
        b.add_callback(lambda e: order.append("b"))
        sim.run()
        assert order == ["a", "b"]
